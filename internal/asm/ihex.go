package asm

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteIHex serializes an assembled image as Intel HEX, the loadable
// program format the paper's toolflow produces (Figure 11's "Loadable
// Program Binary (.ihex)").
func WriteIHex(w io.Writer, img *Image) error {
	bw := bufio.NewWriter(w)
	for _, seg := range img.Segments {
		// Emit 16-byte records.
		bytes := make([]byte, 2*len(seg.Words))
		for i, word := range seg.Words {
			bytes[2*i] = byte(word)
			bytes[2*i+1] = byte(word >> 8)
		}
		for off := 0; off < len(bytes); off += 16 {
			end := off + 16
			if end > len(bytes) {
				end = len(bytes)
			}
			rec := bytes[off:end]
			addr := seg.Addr + uint16(off)
			sum := byte(len(rec)) + byte(addr>>8) + byte(addr)
			fmt.Fprintf(bw, ":%02X%04X00", len(rec), addr)
			for _, b := range rec {
				fmt.Fprintf(bw, "%02X", b)
				sum += b
			}
			fmt.Fprintf(bw, "%02X\n", byte(-sum))
		}
	}
	fmt.Fprintln(bw, ":00000001FF") // EOF record
	return bw.Flush()
}

// ReadIHex parses Intel HEX into (address, word) pairs, invoking store for
// each 16-bit little-endian word. Odd trailing bytes are zero-padded.
func ReadIHex(r io.Reader, store func(addr uint16, word uint16)) error {
	sc := bufio.NewScanner(r)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line[0] != ':' {
			return fmt.Errorf("ihex line %d: missing ':'", lineno)
		}
		data := line[1:]
		if len(data)%2 != 0 || len(data) < 10 {
			return fmt.Errorf("ihex line %d: bad length", lineno)
		}
		raw := make([]byte, len(data)/2)
		for i := range raw {
			var b byte
			if _, err := fmt.Sscanf(data[2*i:2*i+2], "%02X", &b); err != nil {
				return fmt.Errorf("ihex line %d: bad hex: %v", lineno, err)
			}
			raw[i] = b
		}
		count := int(raw[0])
		addr := uint16(raw[1])<<8 | uint16(raw[2])
		typ := raw[3]
		if len(raw) != count+5 {
			return fmt.Errorf("ihex line %d: count mismatch", lineno)
		}
		var sum byte
		for _, b := range raw {
			sum += b
		}
		if sum != 0 {
			return fmt.Errorf("ihex line %d: checksum error", lineno)
		}
		switch typ {
		case 0x00: // data
			payload := raw[4 : 4+count]
			for i := 0; i < len(payload); i += 2 {
				lo := payload[i]
				hi := byte(0)
				if i+1 < len(payload) {
					hi = payload[i+1]
				}
				store(addr+uint16(i), uint16(lo)|uint16(hi)<<8)
			}
		case 0x01: // EOF
			return nil
		default:
			return fmt.Errorf("ihex line %d: unsupported record type %#02x", lineno, typ)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return fmt.Errorf("ihex: missing EOF record")
}
