package asm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/isa"
)

// ParseError reports a source position alongside the message.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string { return fmt.Sprintf("line %d: %s", e.Line, e.Msg) }

// Parse turns assembly source into a statement list.
func Parse(src string) ([]Stmt, error) {
	var stmts []Stmt
	for i, raw := range strings.Split(src, "\n") {
		line := raw
		lineno := i + 1
		var comment string
		if ci := strings.IndexByte(line, ';'); ci >= 0 {
			comment = strings.TrimSpace(line[ci+1:])
			line = line[:ci]
		}
		line = strings.TrimSpace(line)

		var label string
		if ci := strings.IndexByte(line, ':'); ci >= 0 {
			label = strings.TrimSpace(line[:ci])
			if !isIdent(label) {
				return nil, &ParseError{lineno, fmt.Sprintf("bad label %q", label)}
			}
			line = strings.TrimSpace(line[ci+1:])
		}

		st, err := parseBody(line)
		if err != nil {
			return nil, &ParseError{lineno, err.Error()}
		}
		st.Label = label
		st.Line = lineno
		st.Comment = comment
		if st.Kind == SEmpty && label == "" && comment == "" {
			continue // drop fully blank lines
		}
		stmts = append(stmts, st)
	}
	return stmts, nil
}

func parseBody(line string) (Stmt, error) {
	if line == "" {
		return Stmt{Kind: SEmpty}, nil
	}
	mnemonic, rest, _ := strings.Cut(line, " ")
	mnemonic = strings.ToLower(strings.TrimSpace(mnemonic))
	rest = strings.TrimSpace(rest)

	if strings.HasPrefix(mnemonic, ".") {
		return parseDirective(mnemonic, rest)
	}

	bw := false
	switch {
	case strings.HasSuffix(mnemonic, ".b"):
		bw = true
		mnemonic = strings.TrimSuffix(mnemonic, ".b")
	case strings.HasSuffix(mnemonic, ".w"):
		mnemonic = strings.TrimSuffix(mnemonic, ".w")
	}
	if _, ok := mnemonics[mnemonic]; !ok {
		return Stmt{}, fmt.Errorf("unknown mnemonic %q", mnemonic)
	}
	var ops []Operand
	if rest != "" {
		for _, part := range splitOperands(rest) {
			op, err := parseOperand(strings.TrimSpace(part))
			if err != nil {
				return Stmt{}, err
			}
			ops = append(ops, op)
		}
	}
	return Stmt{Kind: SInstr, Mnemonic: mnemonic, BW: bw, Ops: ops}, nil
}

func parseDirective(dir, rest string) (Stmt, error) {
	switch dir {
	case ".org":
		e, err := parseExpr(rest)
		if err != nil {
			return Stmt{}, err
		}
		return Stmt{Kind: SOrg, Exprs: []Expr{e}}, nil
	case ".space":
		e, err := parseExpr(rest)
		if err != nil {
			return Stmt{}, err
		}
		return Stmt{Kind: SSpace, Exprs: []Expr{e}}, nil
	case ".word":
		var exprs []Expr
		for _, part := range splitOperands(rest) {
			e, err := parseExpr(strings.TrimSpace(part))
			if err != nil {
				return Stmt{}, err
			}
			exprs = append(exprs, e)
		}
		if len(exprs) == 0 {
			return Stmt{}, fmt.Errorf(".word needs at least one value")
		}
		return Stmt{Kind: SWord, Exprs: exprs}, nil
	case ".equ", ".set":
		name, val, ok := strings.Cut(rest, ",")
		if !ok {
			return Stmt{}, fmt.Errorf("%s wants: name, value", dir)
		}
		name = strings.TrimSpace(name)
		if !isIdent(name) {
			return Stmt{}, fmt.Errorf("bad symbol name %q", name)
		}
		e, err := parseExpr(strings.TrimSpace(val))
		if err != nil {
			return Stmt{}, err
		}
		return Stmt{Kind: SEqu, EquName: name, Exprs: []Expr{e}}, nil
	}
	return Stmt{}, fmt.Errorf("unknown directive %q", dir)
}

// splitOperands splits on commas that are not inside parentheses (there are
// none in this grammar, but keep it robust).
func splitOperands(s string) []string {
	var parts []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	parts = append(parts, s[start:])
	return parts
}

func parseOperand(s string) (Operand, error) {
	if s == "" {
		return Operand{}, fmt.Errorf("empty operand")
	}
	switch s[0] {
	case '#':
		e, err := parseExpr(s[1:])
		if err != nil {
			return Operand{}, err
		}
		return Operand{Kind: OpImm, Expr: e}, nil
	case '&':
		e, err := parseExpr(s[1:])
		if err != nil {
			return Operand{}, err
		}
		return Operand{Kind: OpAbs, Expr: e}, nil
	case '@':
		body := s[1:]
		kind := OpIndirect
		if strings.HasSuffix(body, "+") {
			kind = OpIndInc
			body = body[:len(body)-1]
		}
		r, ok := parseReg(body)
		if !ok {
			return Operand{}, fmt.Errorf("bad register %q", body)
		}
		return Operand{Kind: kind, Reg: r}, nil
	}
	if strings.HasSuffix(s, ")") {
		open := strings.IndexByte(s, '(')
		if open < 0 {
			return Operand{}, fmt.Errorf("bad indexed operand %q", s)
		}
		r, ok := parseReg(strings.TrimSpace(s[open+1 : len(s)-1]))
		if !ok {
			return Operand{}, fmt.Errorf("bad register in %q", s)
		}
		e, err := parseExpr(strings.TrimSpace(s[:open]))
		if err != nil {
			return Operand{}, err
		}
		return Operand{Kind: OpIndexed, Reg: r, Expr: e}, nil
	}
	if r, ok := parseReg(s); ok {
		return Operand{Kind: OpReg, Reg: r}, nil
	}
	e, err := parseExpr(s)
	if err != nil {
		return Operand{}, err
	}
	return Operand{Kind: OpSym, Expr: e}, nil
}

func parseReg(s string) (isa.Reg, bool) {
	switch strings.ToLower(s) {
	case "pc", "r0":
		return isa.PC, true
	case "sp", "r1":
		return isa.SP, true
	case "sr", "r2":
		return isa.SR, true
	case "cg", "r3":
		return isa.CG, true
	}
	ls := strings.ToLower(s)
	if strings.HasPrefix(ls, "r") {
		if n, err := strconv.Atoi(ls[1:]); err == nil && n >= 0 && n <= 15 {
			return isa.Reg(n), true
		}
	}
	return 0, false
}

// parseExpr parses a +/- separated chain of symbols and integer literals.
func parseExpr(s string) (Expr, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, fmt.Errorf("empty expression")
	}
	var e Expr
	neg := false
	i := 0
	for i < len(s) {
		switch s[i] {
		case '+':
			i++
			continue
		case '-':
			neg = !neg
			i++
			continue
		case ' ', '\t':
			i++
			continue
		}
		j := i
		for j < len(s) && s[j] != '+' && s[j] != '-' && s[j] != ' ' && s[j] != '\t' {
			j++
		}
		tok := s[i:j]
		if v, err := parseInt(tok); err == nil {
			e = append(e, ExprTerm{Neg: neg, Num: v})
		} else if isIdent(tok) {
			e = append(e, ExprTerm{Neg: neg, Sym: tok})
		} else {
			return nil, fmt.Errorf("bad expression token %q", tok)
		}
		neg = false
		i = j
	}
	if len(e) == 0 {
		return nil, fmt.Errorf("empty expression %q", s)
	}
	return e, nil
}

func parseInt(s string) (int64, error) {
	return strconv.ParseInt(strings.ToLower(s), 0, 64)
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '.':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
