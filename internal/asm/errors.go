package asm

import "fmt"

// UndefinedSymbolError reports a reference to a symbol that has no
// definition. It is returned (wrapped with statement context) from Assemble
// for undefined references in source, and from Image.ResolveSymbol for
// harness lookups — the two paths that previously panicked or reported only
// a flat string.
type UndefinedSymbolError struct {
	Symbol string
	// Line is the 1-based source line of the referencing statement, or 0
	// when the lookup is not tied to a source position (symbol-table
	// queries on an assembled image).
	Line int
}

func (e *UndefinedSymbolError) Error() string {
	return fmt.Sprintf("undefined symbol %q", e.Symbol)
}
