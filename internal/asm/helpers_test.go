package asm

import (
	"strings"
	"testing"
)

func TestExprConstructors(t *testing.T) {
	syms := map[string]int64{"base": 0x400}
	if v, err := Sym("base").Eval(syms); err != nil || v != 0x400 {
		t.Fatalf("Sym: %v %v", v, err)
	}
	if v, err := SymPlus("base", 8).Eval(syms); err != nil || v != 0x408 {
		t.Fatalf("SymPlus: %v %v", v, err)
	}
	if _, err := Sym("missing").Eval(syms); err == nil {
		t.Fatal("undefined symbol should fail")
	}
	if v, ok := SymPlus("base", 8).ConstOnly(); ok {
		t.Fatalf("symbolic expr reported const %v", v)
	}
	if got := SymPlus("base", -2).String(); got != "base-2" {
		t.Fatalf("expr string = %q", got)
	}
	if got := (Expr{}).String(); got != "0" {
		t.Fatalf("empty expr = %q", got)
	}
}

func TestOperandConstructorsAndPrinting(t *testing.T) {
	st := InstrStmt("mov", Imm(Int(0x500)), Indexed(Int(4), 9))
	if got := st.String(); !strings.Contains(got, "mov #0x500, 4(r9)") {
		t.Fatalf("stmt = %q", got)
	}
	st2 := InstrStmt("mov", RegOp(5), Abs(Int(0x120)))
	if got := st2.String(); !strings.Contains(got, "mov r5, &0x120") {
		t.Fatalf("stmt = %q", got)
	}
	// Built statements must assemble.
	img, err := Assemble([]Stmt{st, st2})
	if err != nil {
		t.Fatal(err)
	}
	if img.SizeWords() == 0 {
		t.Fatal("nothing emitted")
	}
}

func TestParseErrorFormat(t *testing.T) {
	_, err := Parse("frob r4")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("want *ParseError, got %T", err)
	}
	if !strings.Contains(pe.Error(), "line 1") {
		t.Fatalf("error = %q", pe.Error())
	}
}

func TestImageSymbolLookup(t *testing.T) {
	img := assemble(t, "start: nop")
	if _, ok := img.Symbol("start"); !ok {
		t.Fatal("Symbol miss")
	}
	if _, ok := img.Symbol("nope"); ok {
		t.Fatal("Symbol ghost")
	}
}
