package asm

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/isa"
)

type mKind uint8

const (
	mFmt1 mKind = iota
	mFmt2
	mJump
	mEmul
)

type mnemonic struct {
	op   isa.Opcode
	kind mKind
	// emul rewrites an emulated instruction into a real one.
	emul func(bw bool, ops []Operand) (string, []Operand, error)
}

func emul0(real string, fixed ...Operand) func(bool, []Operand) (string, []Operand, error) {
	return func(bw bool, ops []Operand) (string, []Operand, error) {
		if len(ops) != 0 {
			return "", nil, fmt.Errorf("operand count")
		}
		return real, fixed, nil
	}
}

func emul1(real string, mk func(dst Operand) []Operand) func(bool, []Operand) (string, []Operand, error) {
	return func(bw bool, ops []Operand) (string, []Operand, error) {
		if len(ops) != 1 {
			return "", nil, fmt.Errorf("operand count")
		}
		return real, mk(ops[0]), nil
	}
}

var mnemonics map[string]mnemonic

func init() {
	mnemonics = map[string]mnemonic{
		"mov": {op: isa.MOV, kind: mFmt1}, "add": {op: isa.ADD, kind: mFmt1},
		"addc": {op: isa.ADDC, kind: mFmt1}, "subc": {op: isa.SUBC, kind: mFmt1},
		"sub": {op: isa.SUB, kind: mFmt1}, "cmp": {op: isa.CMP, kind: mFmt1},
		"bit": {op: isa.BIT, kind: mFmt1}, "bic": {op: isa.BIC, kind: mFmt1},
		"bis": {op: isa.BIS, kind: mFmt1}, "xor": {op: isa.XOR, kind: mFmt1},
		"and": {op: isa.AND, kind: mFmt1},
		// DADD is intentionally rejected: the hardware executes it as ADD
		// (documented deviation), so the assembler refuses to emit it.

		"rrc": {op: isa.RRC, kind: mFmt2}, "swpb": {op: isa.SWPB, kind: mFmt2},
		"rra": {op: isa.RRA, kind: mFmt2}, "sxt": {op: isa.SXT, kind: mFmt2},
		"push": {op: isa.PUSH, kind: mFmt2}, "call": {op: isa.CALL, kind: mFmt2},
		"reti": {op: isa.RETI, kind: mFmt2},

		"jne": {op: isa.JNE, kind: mJump}, "jeq": {op: isa.JEQ, kind: mJump},
		"jnc": {op: isa.JNC, kind: mJump}, "jc": {op: isa.JC, kind: mJump},
		"jn": {op: isa.JN, kind: mJump}, "jge": {op: isa.JGE, kind: mJump},
		"jl": {op: isa.JL, kind: mJump}, "jmp": {op: isa.JMP, kind: mJump},
		"jnz": {op: isa.JNE, kind: mJump}, "jz": {op: isa.JEQ, kind: mJump},
		"jlo": {op: isa.JNC, kind: mJump}, "jhs": {op: isa.JC, kind: mJump},

		"nop": {kind: mEmul, emul: emul0("mov", RegOp(isa.CG), RegOp(isa.CG))},
		"ret": {kind: mEmul, emul: emul0("mov", Operand{Kind: OpIndInc, Reg: isa.SP}, RegOp(isa.PC))},
		"pop": {kind: mEmul, emul: emul1("mov", func(d Operand) []Operand {
			return []Operand{{Kind: OpIndInc, Reg: isa.SP}, d}
		})},
		"br": {kind: mEmul, emul: emul1("mov", func(d Operand) []Operand {
			return []Operand{d, RegOp(isa.PC)}
		})},
		"clr":  {kind: mEmul, emul: emul1("mov", withImm(0))},
		"inc":  {kind: mEmul, emul: emul1("add", withImm(1))},
		"incd": {kind: mEmul, emul: emul1("add", withImm(2))},
		"dec":  {kind: mEmul, emul: emul1("sub", withImm(1))},
		"decd": {kind: mEmul, emul: emul1("sub", withImm(2))},
		"tst":  {kind: mEmul, emul: emul1("cmp", withImm(0))},
		"inv":  {kind: mEmul, emul: emul1("xor", withImm(-1))},
		"rla":  {kind: mEmul, emul: emul1("add", func(d Operand) []Operand { return []Operand{d, d} })},
		"rlc":  {kind: mEmul, emul: emul1("addc", func(d Operand) []Operand { return []Operand{d, d} })},
		"adc":  {kind: mEmul, emul: emul1("addc", withImm(0))},
		"sbc":  {kind: mEmul, emul: emul1("subc", withImm(0))},
		"clrc": {kind: mEmul, emul: emul0("bic", Imm(Int(1)), RegOp(isa.SR))},
		"setc": {kind: mEmul, emul: emul0("bis", Imm(Int(1)), RegOp(isa.SR))},
		"clrz": {kind: mEmul, emul: emul0("bic", Imm(Int(2)), RegOp(isa.SR))},
		"setz": {kind: mEmul, emul: emul0("bis", Imm(Int(2)), RegOp(isa.SR))},
		"clrn": {kind: mEmul, emul: emul0("bic", Imm(Int(4)), RegOp(isa.SR))},
		"setn": {kind: mEmul, emul: emul0("bis", Imm(Int(4)), RegOp(isa.SR))},
		"dint": {kind: mEmul, emul: emul0("bic", Imm(Int(8)), RegOp(isa.SR))},
		"eint": {kind: mEmul, emul: emul0("bis", Imm(Int(8)), RegOp(isa.SR))},
	}
}

func withImm(v int64) func(d Operand) []Operand {
	return func(d Operand) []Operand { return []Operand{Imm(Int(v)), d} }
}

// Segment is a contiguous run of assembled words.
type Segment struct {
	Addr  uint16
	Words []uint16
}

// Image is an assembled program.
type Image struct {
	Segments []Segment
	Symbols  map[string]int64
	Stmts    []Stmt
	// AddrToStmt maps the first word address of each emitted instruction or
	// datum to its statement index; StmtToAddr is the inverse.
	AddrToStmt map[uint16]int
	StmtToAddr map[int]uint16
	// Entry is the address of the first instruction emitted (used as the
	// reset target unless a "start" symbol exists).
	Entry uint16
}

// cgImmediates maps immediate values to constant-generator encodings.
func cgEncoding(v int64) (isa.Reg, isa.AMode, bool) {
	switch v {
	case 0:
		return isa.CG, isa.ModeReg, true
	case 1:
		return isa.CG, isa.ModeIndexed, true
	case 2:
		return isa.CG, isa.ModeIndirect, true
	case -1, 0xffff:
		return isa.CG, isa.ModeIncr, true
	case 4:
		return isa.SR, isa.ModeIndirect, true
	case 8:
		return isa.SR, isa.ModeIncr, true
	}
	return 0, 0, false
}

// srcSize reports whether a source operand needs an extension word. The
// answer must not depend on symbol values (so pass 1 can size code), hence
// only literal immediates get the constant generator.
func srcNeedsExt(o Operand) bool {
	switch o.Kind {
	case OpImm:
		if v, ok := o.Expr.ConstOnly(); ok {
			if _, _, cg := cgEncoding(v); cg {
				return false
			}
		}
		return true
	case OpIndexed, OpAbs, OpSym:
		return true
	}
	return false
}

func dstNeedsExt(o Operand) bool {
	switch o.Kind {
	case OpIndexed, OpAbs, OpSym:
		return true
	}
	return false
}

// instrSize returns the word count of an instruction statement after
// emulation rewriting.
func instrSize(st *Stmt) (int, error) {
	mn, ops, err := resolveEmul(st)
	if err != nil {
		return 0, err
	}
	info := mnemonics[mn]
	switch info.kind {
	case mJump:
		return 1, nil
	case mFmt2:
		if info.op == isa.RETI {
			return 1, nil
		}
		if len(ops) != 1 {
			return 0, fmt.Errorf("%s wants 1 operand", mn)
		}
		if srcNeedsExt(ops[0]) {
			return 2, nil
		}
		return 1, nil
	default:
		if len(ops) != 2 {
			return 0, fmt.Errorf("%s wants 2 operands", mn)
		}
		n := 1
		if srcNeedsExt(ops[0]) {
			n++
		}
		if dstNeedsExt(ops[1]) {
			n++
		}
		return n, nil
	}
}

func resolveEmul(st *Stmt) (string, []Operand, error) {
	info, ok := mnemonics[st.Mnemonic]
	if !ok {
		return "", nil, fmt.Errorf("unknown mnemonic %q", st.Mnemonic)
	}
	if info.kind != mEmul {
		return st.Mnemonic, st.Ops, nil
	}
	mn, ops, err := info.emul(st.BW, st.Ops)
	if err != nil {
		return "", nil, fmt.Errorf("%s: %v", st.Mnemonic, err)
	}
	return mn, ops, nil
}

// Assemble runs both passes over a statement list.
func Assemble(stmts []Stmt) (*Image, error) {
	img := &Image{
		Symbols:    make(map[string]int64),
		Stmts:      stmts,
		AddrToStmt: make(map[uint16]int),
		StmtToAddr: make(map[int]uint16),
	}
	errAt := func(st *Stmt, format string, args ...any) error {
		err := fmt.Errorf(format, args...)
		var undef *UndefinedSymbolError
		if errors.As(err, &undef) && undef.Line == 0 {
			undef.Line = st.Line
		}
		return fmt.Errorf("line %d (%s): %w", st.Line, st.Mnemonic, err)
	}

	// Pass 1: layout and symbol definition.
	addr := int64(isa.ROMStart)
	firstInstr := int64(-1)
	for i := range stmts {
		st := &stmts[i]
		if st.Label != "" {
			if _, dup := img.Symbols[st.Label]; dup {
				return nil, errAt(st, "duplicate symbol %q", st.Label)
			}
			img.Symbols[st.Label] = addr
		}
		switch st.Kind {
		case SEmpty:
		case SEqu:
			v, err := st.Exprs[0].Eval(img.Symbols)
			if err != nil {
				return nil, errAt(st, "%w", err)
			}
			if _, dup := img.Symbols[st.EquName]; dup {
				return nil, errAt(st, "duplicate symbol %q", st.EquName)
			}
			img.Symbols[st.EquName] = v
		case SOrg:
			v, err := st.Exprs[0].Eval(img.Symbols)
			if err != nil {
				return nil, errAt(st, "%w", err)
			}
			addr = v
			if st.Label != "" {
				img.Symbols[st.Label] = addr
			}
		case SSpace:
			v, err := st.Exprs[0].Eval(img.Symbols)
			if err != nil {
				return nil, errAt(st, "%w", err)
			}
			addr += v
		case SWord:
			addr += int64(2 * len(st.Exprs))
		case SInstr:
			if firstInstr < 0 {
				firstInstr = addr
			}
			n, err := instrSize(st)
			if err != nil {
				return nil, errAt(st, "%w", err)
			}
			addr += int64(2 * n)
		}
		if addr > 1<<16 {
			return nil, errAt(st, "address overflow")
		}
	}
	if firstInstr >= 0 {
		img.Entry = uint16(firstInstr)
	}
	if s, ok := img.Symbols["start"]; ok {
		img.Entry = uint16(s)
	}

	// Pass 2: emission.
	words := make(map[uint16]uint16)
	emit := func(st *Stmt, a int64, w uint16) error {
		if a&1 != 0 {
			return errAt(st, "odd address %#x", a)
		}
		ua := uint16(a)
		if _, dup := words[ua]; dup {
			return errAt(st, "overlapping emission at %#04x", ua)
		}
		words[ua] = w
		return nil
	}
	addr = int64(isa.ROMStart)
	for i := range stmts {
		st := &stmts[i]
		switch st.Kind {
		case SOrg:
			addr, _ = st.Exprs[0].Eval(img.Symbols)
		case SSpace:
			n, _ := st.Exprs[0].Eval(img.Symbols)
			addr += n
		case SWord:
			img.AddrToStmt[uint16(addr)] = i
			img.StmtToAddr[i] = uint16(addr)
			for _, e := range st.Exprs {
				v, err := e.Eval(img.Symbols)
				if err != nil {
					return nil, errAt(st, "%w", err)
				}
				if err := emit(st, addr, uint16(v)); err != nil {
					return nil, err
				}
				addr += 2
			}
		case SInstr:
			in, err := encodeStmt(st, uint16(addr), img.Symbols)
			if err != nil {
				return nil, errAt(st, "%w", err)
			}
			ws, err := in.Encode()
			if err != nil {
				return nil, errAt(st, "%w", err)
			}
			img.AddrToStmt[uint16(addr)] = i
			img.StmtToAddr[i] = uint16(addr)
			for _, w := range ws {
				if err := emit(st, addr, w); err != nil {
					return nil, err
				}
				addr += 2
			}
		}
	}

	// Collapse the word map into sorted contiguous segments.
	addrs := make([]int, 0, len(words))
	for a := range words {
		addrs = append(addrs, int(a))
	}
	sort.Ints(addrs)
	for _, a := range addrs {
		n := len(img.Segments)
		if n > 0 {
			seg := &img.Segments[n-1]
			if int(seg.Addr)+2*len(seg.Words) == a {
				seg.Words = append(seg.Words, words[uint16(a)])
				continue
			}
		}
		img.Segments = append(img.Segments, Segment{Addr: uint16(a), Words: []uint16{words[uint16(a)]}})
	}
	return img, nil
}

// encodeStmt converts one instruction statement into an isa.Instr. addr is
// the address of the instruction's first word (needed for PC-relative
// operands and jumps).
func encodeStmt(st *Stmt, addr uint16, symbols map[string]int64) (isa.Instr, error) {
	mn, ops, err := resolveEmul(st)
	if err != nil {
		return isa.Instr{}, err
	}
	info := mnemonics[mn]
	in := isa.Instr{Op: info.op, BW: st.BW}

	switch info.kind {
	case mJump:
		if len(ops) != 1 || (ops[0].Kind != OpSym && ops[0].Kind != OpImm) {
			return isa.Instr{}, fmt.Errorf("%s wants a label target", mn)
		}
		target, err := ops[0].Expr.Eval(symbols)
		if err != nil {
			return isa.Instr{}, err
		}
		delta := target - int64(addr) - 2
		if delta&1 != 0 {
			return isa.Instr{}, fmt.Errorf("odd jump target %#x", target)
		}
		off := delta / 2
		if off < -512 || off > 511 {
			return isa.Instr{}, fmt.Errorf("jump target out of range (offset %d words)", off)
		}
		in.Off = int16(off)
		return in, nil

	case mFmt2:
		if info.op == isa.RETI {
			if len(ops) != 0 {
				return isa.Instr{}, fmt.Errorf("reti takes no operands")
			}
			return in, nil
		}
		if len(ops) != 1 {
			return isa.Instr{}, fmt.Errorf("%s wants 1 operand", mn)
		}
		extAddr := addr + 2
		if err := setSrc(&in, ops[0], extAddr, symbols); err != nil {
			return isa.Instr{}, err
		}
		if info.op != isa.PUSH && info.op != isa.CALL && in.As == isa.ModeIncr && in.Src != isa.PC {
			return isa.Instr{}, fmt.Errorf("%s does not support @Rn+", mn)
		}
		if in.Src == isa.PC && in.As == isa.ModeReg {
			return isa.Instr{}, fmt.Errorf("%s cannot operate on pc", mn)
		}
		return in, nil

	default: // mFmt1
		if len(ops) != 2 {
			return isa.Instr{}, fmt.Errorf("%s wants 2 operands", mn)
		}
		srcExtAddr := addr + 2
		if err := setSrc(&in, ops[0], srcExtAddr, symbols); err != nil {
			return isa.Instr{}, err
		}
		dstExtAddr := srcExtAddr
		if in.SrcUsesExt() {
			dstExtAddr += 2
		}
		if err := setDst(&in, ops[1], dstExtAddr, symbols); err != nil {
			return isa.Instr{}, err
		}
		if in.Dst == isa.PC && in.Ad == 0 && in.Op != isa.MOV {
			// Read-modify-write of the PC (e.g. add #2, pc) depends on
			// microarchitectural timing; only MOV (i.e. br/ret) may target it.
			return isa.Instr{}, fmt.Errorf("%s cannot target pc; use br", mn)
		}
		return in, nil
	}
}

func setSrc(in *isa.Instr, o Operand, extAddr uint16, symbols map[string]int64) error {
	switch o.Kind {
	case OpReg:
		if o.Reg == isa.PC {
			// Reading the PC as a register operand is timing-dependent on
			// the hardware; use a symbolic or immediate operand instead.
			return fmt.Errorf("pc cannot be a register-mode source operand")
		}
		in.Src, in.As = o.Reg, isa.ModeReg
	case OpIndirect:
		if o.Reg == isa.CG || o.Reg == isa.SR || o.Reg == isa.PC {
			return fmt.Errorf("@%s is not addressable", o.Reg)
		}
		in.Src, in.As = o.Reg, isa.ModeIndirect
	case OpIndInc:
		if o.Reg == isa.CG || o.Reg == isa.SR || o.Reg == isa.PC {
			return fmt.Errorf("@%s+ is not addressable", o.Reg)
		}
		in.Src, in.As = o.Reg, isa.ModeIncr
	case OpImm:
		v, err := o.Expr.Eval(symbols)
		if err != nil {
			return err
		}
		if cv, ok := o.Expr.ConstOnly(); ok {
			if r, as, cg := cgEncoding(cv); cg {
				in.Src, in.As = r, as
				return nil
			}
		}
		in.Src, in.As, in.SrcExt = isa.PC, isa.ModeIncr, uint16(v)
	case OpIndexed:
		v, err := o.Expr.Eval(symbols)
		if err != nil {
			return err
		}
		if o.Reg == isa.PC || o.Reg == isa.SR || o.Reg == isa.CG {
			return fmt.Errorf("indexed mode on %s not supported; use a symbol or &addr", o.Reg)
		}
		in.Src, in.As, in.SrcExt = o.Reg, isa.ModeIndexed, uint16(v)
	case OpAbs:
		v, err := o.Expr.Eval(symbols)
		if err != nil {
			return err
		}
		in.Src, in.As, in.SrcExt = isa.SR, isa.ModeIndexed, uint16(v)
	case OpSym:
		v, err := o.Expr.Eval(symbols)
		if err != nil {
			return err
		}
		in.Src, in.As, in.SrcExt = isa.PC, isa.ModeIndexed, uint16(int64(uint16(v))-int64(extAddr))
	default:
		return fmt.Errorf("bad source operand")
	}
	return nil
}

func setDst(in *isa.Instr, o Operand, extAddr uint16, symbols map[string]int64) error {
	switch o.Kind {
	case OpReg:
		in.Dst, in.Ad = o.Reg, 0
	case OpIndexed:
		v, err := o.Expr.Eval(symbols)
		if err != nil {
			return err
		}
		if o.Reg == isa.PC || o.Reg == isa.SR || o.Reg == isa.CG {
			return fmt.Errorf("indexed destination on %s not supported", o.Reg)
		}
		in.Dst, in.Ad, in.DstExt = o.Reg, 1, uint16(v)
	case OpAbs:
		v, err := o.Expr.Eval(symbols)
		if err != nil {
			return err
		}
		in.Dst, in.Ad, in.DstExt = isa.SR, 1, uint16(v)
	case OpSym:
		v, err := o.Expr.Eval(symbols)
		if err != nil {
			return err
		}
		in.Dst, in.Ad, in.DstExt = isa.PC, 1, uint16(int64(uint16(v))-int64(extAddr))
	default:
		return fmt.Errorf("bad destination operand (immediates and @Rn cannot be destinations)")
	}
	return nil
}

// AssembleSource parses and assembles in one step.
func AssembleSource(src string) (*Image, error) {
	stmts, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Assemble(stmts)
}

// Place writes the image into a word-addressed store (e.g. program memory).
func (img *Image) Place(store func(addr uint16, word uint16)) {
	for _, seg := range img.Segments {
		for i, w := range seg.Words {
			store(seg.Addr+uint16(2*i), w)
		}
	}
}

// Symbol returns the value of a defined symbol.
func (img *Image) Symbol(name string) (uint16, bool) {
	v, ok := img.Symbols[name]
	return uint16(v), ok
}

// ResolveSymbol returns the value of a defined symbol, or a typed
// *UndefinedSymbolError naming the missing symbol. Harnesses that consume
// caller-supplied programs should use this instead of MustSymbol.
func (img *Image) ResolveSymbol(name string) (uint16, error) {
	v, ok := img.Symbols[name]
	if !ok {
		return 0, &UndefinedSymbolError{Symbol: name}
	}
	return uint16(v), nil
}

// MustSymbol panics when the symbol is missing; for use by harnesses whose
// programs are compiled in. The panic value is the typed
// *UndefinedSymbolError, so a recover() boundary can surface the symbol.
func (img *Image) MustSymbol(name string) uint16 {
	v, err := img.ResolveSymbol(name)
	if err != nil {
		panic(err)
	}
	return v
}

// SizeWords returns the total number of emitted words.
func (img *Image) SizeWords() int {
	n := 0
	for _, s := range img.Segments {
		n += len(s.Words)
	}
	return n
}
