package asm

import (
	"errors"
	"strings"
	"testing"
)

// An undefined symbol in source is a typed error carrying the symbol name
// and the referencing line — not a panic, not a flat string.
func TestUndefinedSymbolInSource(t *testing.T) {
	_, err := AssembleSource(`
start:  mov #1, r5
        jmp nowhere
`)
	if err == nil {
		t.Fatal("undefined symbol accepted")
	}
	var undef *UndefinedSymbolError
	if !errors.As(err, &undef) {
		t.Fatalf("error not typed: %T %v", err, err)
	}
	if undef.Symbol != "nowhere" {
		t.Fatalf("symbol = %q", undef.Symbol)
	}
	if undef.Line != 3 {
		t.Fatalf("line = %d, want 3", undef.Line)
	}
	if !strings.Contains(err.Error(), `"nowhere"`) || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("message lacks position/name: %q", err.Error())
	}
}

// Directive operands (.org/.equ/.word/.space) resolve through the same
// typed path.
func TestUndefinedSymbolInDirective(t *testing.T) {
	_, err := AssembleSource(`
.equ SIZE, limit+2
start:  nop
`)
	var undef *UndefinedSymbolError
	if !errors.As(err, &undef) || undef.Symbol != "limit" {
		t.Fatalf("got %v", err)
	}
}

// Image lookups: ResolveSymbol returns the typed error; MustSymbol panics
// with the same typed value so recover() boundaries keep the diagnosis.
func TestResolveSymbol(t *testing.T) {
	img, err := AssembleSource("start: nop\n")
	if err != nil {
		t.Fatal(err)
	}
	if v, err := img.ResolveSymbol("start"); err != nil || v != img.Entry {
		t.Fatalf("ResolveSymbol(start) = %#04x, %v", v, err)
	}
	_, err = img.ResolveSymbol("task")
	var undef *UndefinedSymbolError
	if !errors.As(err, &undef) || undef.Symbol != "task" || undef.Line != 0 {
		t.Fatalf("got %v", err)
	}

	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("MustSymbol did not panic")
		}
		if u, ok := p.(*UndefinedSymbolError); !ok || u.Symbol != "task" {
			t.Fatalf("panic value = %v (%T)", p, p)
		}
	}()
	img.MustSymbol("task")
}
