package asm

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

func assemble(t *testing.T, src string) *Image {
	t.Helper()
	img, err := AssembleSource(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return img
}

// runImage loads an image into a flat memory and executes n instructions.
func runImage(t *testing.T, img *Image, n int) *isa.Machine {
	t.Helper()
	mem := new(isa.FlatMem)
	img.Place(mem.StoreWord)
	mem.StoreWord(isa.ResetVec, img.Entry)
	m := isa.NewMachine(mem)
	m.Reset()
	for i := 0; i < n; i++ {
		if _, err := m.Step(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	return m
}

func TestBasicProgram(t *testing.T) {
	img := assemble(t, `
; quickstart
start:  mov #0x1234, r5
        mov r5, r6
        add #1, r6
`)
	m := runImage(t, img, 3)
	if m.R[5] != 0x1234 || m.R[6] != 0x1235 {
		t.Fatalf("r5=%#x r6=%#x", m.R[5], m.R[6])
	}
}

func TestConstantGeneratorOptimization(t *testing.T) {
	img := assemble(t, `
        mov #0, r5
        mov #1, r6
        mov #2, r7
        mov #4, r8
        mov #8, r9
        mov #-1, r10
`)
	// All six use the constant generator: one word each.
	if img.SizeWords() != 6 {
		t.Fatalf("size = %d words, want 6", img.SizeWords())
	}
	m := runImage(t, img, 6)
	want := []uint16{0, 1, 2, 4, 8, 0xffff}
	for i, w := range want {
		if m.R[5+i] != w {
			t.Errorf("r%d = %#x, want %#x", 5+i, m.R[5+i], w)
		}
	}
}

func TestNonCGImmediateUsesExtWord(t *testing.T) {
	img := assemble(t, "mov #3, r5")
	if img.SizeWords() != 2 {
		t.Fatalf("size = %d, want 2", img.SizeWords())
	}
}

func TestLabelsAndJumps(t *testing.T) {
	img := assemble(t, `
start:  mov #5, r10
loop:   dec r10
        jnz loop
done:   jmp done
`)
	m := runImage(t, img, 1+5*2)
	if m.R[10] != 0 {
		t.Fatalf("r10 = %d", m.R[10])
	}
	// After the loop the machine should be parked on the self-jump.
	pc := m.R[isa.PC]
	if _, err := m.Step(); err != nil {
		t.Fatal(err)
	}
	if m.R[isa.PC] != pc {
		t.Fatal("self-jump moved the PC")
	}
}

func TestDirectivesOrgWordSpaceEqu(t *testing.T) {
	img := assemble(t, `
.equ MAGIC, 0xbeef
.org 0xf100
data:   .word MAGIC, data, 3
buf:    .space 4
after:  .word 1
start:  mov data, r5      ; symbolic load
        mov &data, r6     ; absolute load
`)
	if got := img.MustSymbol("data"); got != 0xf100 {
		t.Fatalf("data = %#x", got)
	}
	if got := img.MustSymbol("buf"); got != 0xf106 {
		t.Fatalf("buf = %#x", got)
	}
	if got := img.MustSymbol("after"); got != 0xf10a {
		t.Fatalf("after = %#x", got)
	}
	m := runImage(t, img, 2)
	if m.R[5] != 0xbeef || m.R[6] != 0xbeef {
		t.Fatalf("r5=%#x r6=%#x", m.R[5], m.R[6])
	}
}

func TestEmulatedInstructions(t *testing.T) {
	img := assemble(t, `
start:  mov #0x400, sp
        mov #7, r5
        push r5
        clr r5
        pop r6
        inc r6
        dec r6
        tst r6
        inv r6
        rla r6
        nop
        setc
        clrc
`)
	m := runImage(t, img, 13)
	if m.R[6] != 0xfff0 { // ((^7)&0xffff)<<1
		t.Fatalf("r6 = %#x", m.R[6])
	}
	if m.R[isa.SP] != 0x400 {
		t.Fatalf("sp = %#x", m.R[isa.SP])
	}
	if m.R[isa.SR]&isa.FlagC != 0 {
		t.Fatal("carry should be clear")
	}
}

func TestRetAndBr(t *testing.T) {
	img := assemble(t, `
start:  mov #0x400, sp
        call #func
        mov #1, r10
stop:   jmp stop
func:   mov #9, r9
        ret
`)
	m := runImage(t, img, 5)
	if m.R[9] != 9 || m.R[10] != 1 {
		t.Fatalf("r9=%d r10=%d", m.R[9], m.R[10])
	}
	img = assemble(t, `
start:  br #over
        mov #0xdead, r5
over:   nop
`)
	m = runImage(t, img, 2)
	if m.R[5] == 0xdead {
		t.Fatal("br did not branch")
	}
}

func TestByteSuffix(t *testing.T) {
	img := assemble(t, `
        mov #0x3ff, r5
        mov.b r5, r6
`)
	m := runImage(t, img, 2)
	if m.R[6] != 0xff {
		t.Fatalf("r6 = %#x", m.R[6])
	}
}

func TestSymbolExpressions(t *testing.T) {
	img := assemble(t, `
.equ BASE, 0x0300
.equ OFF, 8
        mov #BASE+OFF, r4
        mov #BASE-2, r5
`)
	m := runImage(t, img, 2)
	if m.R[4] != 0x0308 || m.R[5] != 0x02fe {
		t.Fatalf("r4=%#x r5=%#x", m.R[4], m.R[5])
	}
}

func TestIndexedOperands(t *testing.T) {
	img := assemble(t, `
start:  mov #0x0300, r4
        mov #0xaa, 2(r4)
        mov 2(r4), r5
`)
	m := runImage(t, img, 3)
	if m.R[5] != 0xaa {
		t.Fatalf("r5 = %#x", m.R[5])
	}
}

func TestErrors(t *testing.T) {
	cases := map[string]string{
		"unknown mnemonic":   "frob r4, r5",
		"dadd rejected":      "dadd r4, r5",
		"bad label":          "9lbl: nop",
		"duplicate label":    "a: nop\na: nop",
		"undefined symbol":   "mov #nosuch, r5",
		"imm as destination": "mov r5, #4",
		"jump out of range":  "jmp far\n.org 0xf900\nfar: nop",
		"operand count":      "mov r5",
		"swpb byte form":     "swpb.b r5",
		"reti with operand":  "reti r5",
		"push @r2+":          "push @r2+",
		"rrc @r4+":           "rrc @r4+",
		"overlap":            ".org 0xf000\nnop\n.org 0xf000\nnop",
		"odd org":            ".org 0xf001\nnop",
		"bad expression":     "mov #4*2, r5",
		"bad operand":        "mov )(, r5",
	}
	for name, src := range cases {
		if _, err := AssembleSource(src); err == nil {
			t.Errorf("%s: assembled %q without error", name, src)
		}
	}
}

func TestAddrStmtMaps(t *testing.T) {
	img := assemble(t, `
start:  mov #0x1234, r5
        nop
        jmp start
`)
	if len(img.AddrToStmt) != 3 {
		t.Fatalf("AddrToStmt has %d entries", len(img.AddrToStmt))
	}
	for addr, si := range img.AddrToStmt {
		if img.StmtToAddr[si] != addr {
			t.Fatalf("inverse map broken for %#x", addr)
		}
	}
	// The first instruction spans 2 words; the nop must be at +4.
	si, ok := img.AddrToStmt[img.Entry+4]
	if !ok || img.Stmts[si].Mnemonic != "nop" {
		t.Fatal("nop not mapped at expected address")
	}
}

func TestPrintRoundTrip(t *testing.T) {
	src := `
.equ N, 25
start:  mov #N, r10       ; loop count
loop:   dec r10
        jnz loop
        mov.b @r4+, r5
        mov r5, &0x0120
        push #0x1234
data:   .word 1, 2, start
        .space 8
done:   jmp done
`
	stmts, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	img1, err := Assemble(stmts)
	if err != nil {
		t.Fatal(err)
	}
	printed := Print(stmts)
	stmts2, err := Parse(printed)
	if err != nil {
		t.Fatalf("reparse printed source: %v\n%s", err, printed)
	}
	img2, err := Assemble(stmts2)
	if err != nil {
		t.Fatalf("reassemble printed source: %v\n%s", err, printed)
	}
	if len(img1.Segments) != len(img2.Segments) {
		t.Fatalf("segment count changed: %d vs %d", len(img1.Segments), len(img2.Segments))
	}
	for i := range img1.Segments {
		s1, s2 := img1.Segments[i], img2.Segments[i]
		if s1.Addr != s2.Addr || len(s1.Words) != len(s2.Words) {
			t.Fatalf("segment %d differs", i)
		}
		for j := range s1.Words {
			if s1.Words[j] != s2.Words[j] {
				t.Fatalf("word %d of segment %d differs: %#x vs %#x", j, i, s1.Words[j], s2.Words[j])
			}
		}
	}
}

func TestEntryPoint(t *testing.T) {
	img := assemble(t, `
.org 0xf000
data: .word 42
start: nop
`)
	if img.Entry != img.MustSymbol("start") {
		t.Fatalf("entry = %#x", img.Entry)
	}
}

func TestStartSymbolOverridesEntry(t *testing.T) {
	img := assemble(t, `
        nop
start:  nop
`)
	if img.Entry != img.MustSymbol("start") {
		t.Fatal("start symbol should set the entry")
	}
}

func TestParseOperandForms(t *testing.T) {
	cases := map[string]OpKind{
		"#42":     OpImm,
		"#sym+2":  OpImm,
		"r7":      OpReg,
		"PC":      OpReg,
		"@r6":     OpIndirect,
		"@r6+":    OpIndInc,
		"4(r9)":   OpIndexed,
		"-2(sp)":  OpIndexed,
		"&0x0120": OpAbs,
		"buf+4":   OpSym,
	}
	for src, want := range cases {
		op, err := parseOperand(src)
		if err != nil {
			t.Errorf("parseOperand(%q): %v", src, err)
			continue
		}
		if op.Kind != want {
			t.Errorf("parseOperand(%q).Kind = %d, want %d", src, op.Kind, want)
		}
	}
}

func TestNegativeIndexedOffset(t *testing.T) {
	img := assemble(t, `
start:  mov #0x0304, r4
        mov #0x77, -2(r4)
        mov -2(r4), r5
`)
	m := runImage(t, img, 3)
	if m.R[5] != 0x77 {
		t.Fatalf("r5 = %#x", m.R[5])
	}
	if m.Bus.LoadWord(0x0302) != 0x77 {
		t.Fatal("store went to the wrong address")
	}
}

func TestCommentPreservedByPrinter(t *testing.T) {
	stmts, err := Parse("nop ; keep me")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(Print(stmts), "keep me") {
		t.Fatal("comment lost")
	}
}
