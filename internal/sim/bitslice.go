package sim

import (
	"fmt"
	"math/bits"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// BatchLanes is the lane capacity of one bitsliced evaluation word: every
// net is held as three uint64 bit-planes, so one word operation evaluates a
// gate across up to 64 independent analysis contexts at once.
const BatchLanes = 64

// bitslice is the bitsliced evaluation backend. Each net carries three
// uint64 planes, where bit i of each word is lane i's state:
//
//	L ("can be 0")  H ("can be 1")  T (taint)
//	0:  L=1 H=0         1:  L=0 H=1         X:  L=1 H=1
//
// (L=0,H=0 — the empty value — never occurs.) GLIFT propagation for each
// gate op becomes a handful of straight-line AND/OR/NOT word ops on the
// input planes (see evalGate), exactly equivalent per lane to the
// logic.Eval LUTs — bitslice_test.go proves this exhaustively over every
// valid input combination of every op.
//
// Scheduling mirrors the compiled backend one-for-one: the netlist is
// lowered once into a flat level-ordered instruction stream with a CSR
// fanout adjacency, and Eval drains per-level dirty worklists seeded by
// changed nets, with whole-plane word compares as the change detector. The
// forced-net overlay generalizes to per-lane masks (fMask/fL/fH/fT): a
// fully masked force skips the driver like the scalar backends, a partial
// mask merges the forced lanes over the computed ones.
//
// The same core backs two front ends: the 64-lane-broadcast scalar Backend
// registered as "bitslice" (all lanes identical; a shadow array mirrors
// lane 0 as packed signals to satisfy the Circuit wrapper's dense reads),
// and the per-lane BatchBackend API in batch.go.
type bitslice struct {
	nl       *netlist.Netlist
	lanes    int
	laneMask uint64

	pl, ph, pt []uint64 // per-net planes: can-be-0, can-be-1, taint

	// shadow, when non-nil, mirrors lane 0 of every net as a packed
	// signal — the dense array the Circuit wrapper reads directly. Only
	// the broadcast Backend front end maintains it.
	shadow []logic.Packed

	tmpL, tmpH, tmpT []uint64 // scratch for DFF next-state planes
	rstOne           []bool   // per-DFF reset value is One

	// The instruction stream, index = position in level order.
	op     []uint8 // logic.Op
	in0    []int32
	in1    []int32
	in2    []int32
	out    []int32
	ilevel []int32

	fanIdx    []int32 // CSR: net -> consuming instruction positions
	fan       []int32
	driverPos []int32 // net -> driving instruction position, or -1

	// Dirty-worklist state, as in the compiled backend.
	epoch      uint64
	queuedEp   []uint64 // per instruction: enqueued at this epoch
	forcedEp   []uint64 // per net: forced at this epoch
	buckets    [][]int32
	pending    []netlist.NetID // nets changed since the last Eval
	prevForced []netlist.NetID // nets forced by the previous Eval
	needFull   bool

	// Per-lane force overlay, stamped by forcedEp.
	fMask, fL, fH, fT []uint64

	// Per-lane machinery used by the BatchBackend front end.
	active     uint64      // lanes whose DFF toggles are counted
	countLanes bool        // maintain per-lane toggle counters
	toggles    []uint64    // per-lane accumulated DFF value transitions
	forces     []laneForce // staged per-lane forces for the next Eval
	forceIx    map[netlist.NetID]int32
}

// laneForce is one net's per-lane force for a single Eval: the masked lanes
// take the given plane bits, the rest keep their driver.
type laneForce struct {
	id      netlist.NetID
	mask    uint64
	l, h, t uint64
}

func newBitsliceCore(nl *netlist.Netlist, lanes int, shadow bool) (*bitslice, error) {
	if lanes < 1 || lanes > BatchLanes {
		return nil, fmt.Errorf("sim: bitslice lanes %d out of range [1,%d]", lanes, BatchLanes)
	}
	lv, err := nl.Levelize()
	if err != nil {
		return nil, err
	}
	ng, nn := len(nl.Gates), nl.NumNets()
	c := &bitslice{
		nl:        nl,
		lanes:     lanes,
		laneMask:  ^uint64(0) >> (BatchLanes - lanes),
		pl:        make([]uint64, nn),
		ph:        make([]uint64, nn),
		pt:        make([]uint64, nn),
		tmpL:      make([]uint64, len(nl.DFFs)),
		tmpH:      make([]uint64, len(nl.DFFs)),
		tmpT:      make([]uint64, len(nl.DFFs)),
		rstOne:    make([]bool, len(nl.DFFs)),
		op:        make([]uint8, ng),
		in0:       make([]int32, ng),
		in1:       make([]int32, ng),
		in2:       make([]int32, ng),
		out:       make([]int32, ng),
		ilevel:    make([]int32, ng),
		driverPos: make([]int32, nn),
		queuedEp:  make([]uint64, ng),
		forcedEp:  make([]uint64, nn),
		buckets:   make([][]int32, lv.NumLevels()),
		fMask:     make([]uint64, nn),
		fL:        make([]uint64, nn),
		fH:        make([]uint64, nn),
		fT:        make([]uint64, nn),
		needFull:  true,
		forceIx:   make(map[netlist.NetID]int32),
	}
	c.active = c.laneMask
	if shadow {
		c.shadow = make([]logic.Packed, nn)
	} else {
		c.countLanes = true
		c.toggles = make([]uint64, BatchLanes)
	}
	for i, d := range nl.DFFs {
		c.rstOne[i] = d.RstVal == logic.One
	}
	pos := make([]int32, ng) // gate index -> instruction position
	for p, gi := range lv.Order {
		g := &nl.Gates[gi]
		pos[gi] = int32(p)
		c.op[p] = uint8(g.Op)
		c.out[p] = int32(g.Out)
		c.ilevel[p] = lv.GateLevel[gi]
		switch g.Op.Arity() {
		case 1:
			c.in0[p] = int32(g.In[0])
		case 2:
			c.in0[p] = int32(g.In[0])
			c.in1[p] = int32(g.In[1])
		case 3:
			c.in0[p] = int32(g.In[0]) // select
			c.in1[p] = int32(g.In[1])
			c.in2[p] = int32(g.In[2])
		}
	}
	c.fanIdx = make([]int32, nn+1)
	copy(c.fanIdx, lv.FanoutIndex)
	c.fan = make([]int32, c.fanIdx[nn])
	for id := 0; id < nn; id++ {
		dst := c.fan[c.fanIdx[id]:c.fanIdx[id+1]]
		for i, gi := range lv.NetFanout(netlist.NetID(id)) {
			dst[i] = pos[gi]
		}
		if g := lv.DriverGate[id]; g >= 0 {
			c.driverPos[id] = pos[g]
		} else {
			c.driverPos[id] = -1
		}
	}
	return c, nil
}

// newBitslice constructs the broadcast Backend front end: 64 identical
// lanes behind the scalar interface.
func newBitslice(nl *netlist.Netlist) (*bitslice, error) {
	return newBitsliceCore(nl, BatchLanes, true)
}

// sigPlanes broadcasts one signal to full-width planes.
func sigPlanes(s logic.Sig) (l, h, t uint64) {
	switch s.V {
	case logic.Zero:
		l = ^uint64(0)
	case logic.One:
		h = ^uint64(0)
	default:
		l, h = ^uint64(0), ^uint64(0)
	}
	if s.T {
		t = ^uint64(0)
	}
	return
}

// packLane0 reads lane 0 of a net back as a packed signal.
func (c *bitslice) packLane0(id netlist.NetID) logic.Packed {
	l, h, t := c.pl[id]&1, c.ph[id]&1, c.pt[id]&1
	v := (h &^ l) | (l&h)<<1
	return logic.Packed(v | t<<2)
}

// laneSig reads one lane of a net.
func (c *bitslice) laneSig(id netlist.NetID, lane int) logic.Sig {
	l := c.pl[id] >> lane & 1
	h := c.ph[id] >> lane & 1
	t := c.pt[id] >> lane & 1
	var v logic.V
	switch {
	case l&h != 0:
		v = logic.X
	case h != 0:
		v = logic.One
	default:
		v = logic.Zero
	}
	return logic.Sig{V: v, T: t != 0}
}

// setPlanes writes a net's planes, maintaining the shadow array and the
// pending worklist exactly like the compiled backend's Set.
func (c *bitslice) setPlanes(id netlist.NetID, l, h, t uint64) {
	if c.pl[id] == l && c.ph[id] == h && c.pt[id] == t {
		return
	}
	c.pl[id], c.ph[id], c.pt[id] = l, h, t
	if c.shadow != nil {
		c.shadow[id] = c.packLane0(id)
	}
	if !c.needFull {
		c.pending = append(c.pending, id)
	}
}

// setLane writes one lane of a net, leaving the others untouched.
func (c *bitslice) setLane(id netlist.NetID, lane int, s logic.Sig) {
	bit := uint64(1) << lane
	l, h, t := c.pl[id]&^bit, c.ph[id]&^bit, c.pt[id]&^bit
	switch s.V {
	case logic.Zero:
		l |= bit
	case logic.One:
		h |= bit
	default:
		l |= bit
		h |= bit
	}
	if s.T {
		t |= bit
	}
	c.setPlanes(id, l, h, t)
}

func (c *bitslice) vals() []logic.Packed { return c.shadow }

func (c *bitslice) Get(id netlist.NetID) logic.Packed {
	if c.shadow != nil {
		return c.shadow[id]
	}
	return c.packLane0(id)
}

func (c *bitslice) Set(id netlist.NetID, p logic.Packed) {
	l, h, t := sigPlanes(logic.Unpack(p))
	c.setPlanes(id, l, h, t)
}

func (c *bitslice) InitX() {
	for i := range c.pl {
		c.pl[i], c.ph[i], c.pt[i] = ^uint64(0), ^uint64(0), 0
	}
	c0, c1 := c.nl.Const0(), c.nl.Const1()
	c.pl[c0], c.ph[c0] = ^uint64(0), 0
	c.pl[c1], c.ph[c1] = 0, ^uint64(0)
	if c.shadow != nil {
		xp := logic.Pack(logic.X0)
		for i := range c.shadow {
			c.shadow[i] = xp
		}
		c.shadow[c0] = logic.Pack(logic.Zero0)
		c.shadow[c1] = logic.Pack(logic.One0)
	}
	c.pending = c.pending[:0]
	c.needFull = true
}

// Eval implements the scalar Backend protocol: every forced net applies to
// all lanes.
func (c *bitslice) Eval(forced map[netlist.NetID]logic.Sig) {
	c.forces = c.forces[:0]
	for id, s := range forced {
		l, h, t := sigPlanes(s)
		c.forces = append(c.forces, laneForce{id: id, mask: ^uint64(0), l: l, h: h, t: t})
	}
	c.evalForces(c.forces)
	c.forces = c.forces[:0]
}

// evalForces is the shared Eval core for both front ends.
func (c *bitslice) evalForces(forces []laneForce) {
	c.epoch++
	ep := c.epoch
	for i := range forces {
		f := &forces[i]
		id := f.id
		c.forcedEp[id] = ep
		c.fMask[id] = f.mask
		c.fL[id], c.fH[id], c.fT[id] = f.l&f.mask, f.h&f.mask, f.t&f.mask
		c.setPlanes(id,
			c.pl[id]&^f.mask|c.fL[id],
			c.ph[id]&^f.mask|c.fH[id],
			c.pt[id]&^f.mask|c.fT[id])
	}
	if c.needFull {
		c.fullSweep(ep)
		c.needFull = false
		c.pending = c.pending[:0]
	} else {
		// A net forced last Eval but not this one reverts to whatever its
		// combinational driver computes (sourceless nets — inputs, DFF
		// outputs — simply hold their value, like in the scalar backends).
		for _, id := range c.prevForced {
			if c.forcedEp[id] != ep {
				if dp := c.driverPos[id]; dp >= 0 {
					c.enqueue(dp, ep)
				}
			}
		}
		// A partially masked force leaves its unforced lanes to the
		// driver: re-evaluate it even when no input changed, in case the
		// previous Eval forced different lanes of the same net.
		for i := range forces {
			if forces[i].mask&c.laneMask != c.laneMask {
				if dp := c.driverPos[forces[i].id]; dp >= 0 {
					c.enqueue(dp, ep)
				}
			}
		}
		for _, id := range c.pending {
			c.seed(id, ep)
		}
		c.pending = c.pending[:0]
		c.drain(ep)
	}
	c.prevForced = c.prevForced[:0]
	for i := range forces {
		c.prevForced = append(c.prevForced, forces[i].id)
	}
}

// enqueue marks one instruction dirty, once per epoch.
func (c *bitslice) enqueue(p int32, ep uint64) {
	if c.queuedEp[p] != ep {
		c.queuedEp[p] = ep
		l := c.ilevel[p]
		c.buckets[l] = append(c.buckets[l], p)
	}
}

// seed marks every consumer of a changed net dirty.
func (c *bitslice) seed(id netlist.NetID, ep uint64) {
	for _, p := range c.fan[c.fanIdx[id]:c.fanIdx[id+1]] {
		c.enqueue(p, ep)
	}
}

// drain evaluates the dirty instructions level by level; consumers always
// sit at strictly higher levels, so each bucket is complete when reached.
func (c *bitslice) drain(ep uint64) {
	for l := range c.buckets {
		b := c.buckets[l]
		for i := 0; i < len(b); i++ {
			c.step(b[i], ep)
		}
		c.buckets[l] = b[:0]
	}
}

// step re-evaluates one dirty instruction, merges any per-lane force over
// the computed planes, and propagates on actual change.
func (c *bitslice) step(p int32, ep uint64) {
	o := c.out[p]
	forced := c.forcedEp[o] == ep
	if forced && c.fMask[o]&c.laneMask == c.laneMask {
		return // every lane forced: the overlay value wins this Eval
	}
	l, h, t := c.evalGate(p)
	if forced {
		m := c.fMask[o]
		l = l&^m | c.fL[o]
		h = h&^m | c.fH[o]
		t = t&^m | c.fT[o]
	}
	if l != c.pl[o] || h != c.ph[o] || t != c.pt[o] {
		c.pl[o], c.ph[o], c.pt[o] = l, h, t
		if c.shadow != nil {
			c.shadow[o] = c.packLane0(netlist.NetID(o))
		}
		c.seed(netlist.NetID(o), ep)
	}
}

// fullSweep evaluates the whole stream in level order, used for the first
// Eval and after InitX / DFF-state restores.
func (c *bitslice) fullSweep(ep uint64) {
	for p := range c.op {
		o := c.out[p]
		forced := c.forcedEp[o] == ep
		if forced && c.fMask[o]&c.laneMask == c.laneMask {
			continue
		}
		l, h, t := c.evalGate(int32(p))
		if forced {
			m := c.fMask[o]
			l = l&^m | c.fL[o]
			h = h&^m | c.fH[o]
			t = t&^m | c.fT[o]
		}
		c.pl[o], c.ph[o], c.pt[o] = l, h, t
		if c.shadow != nil {
			c.shadow[o] = c.packLane0(netlist.NetID(o))
		}
	}
}

// Plane formulas. Value rails follow Kleene strong logic on the (L,H)
// encoding; taint rails implement the GLIFT rule: an output lane is tainted
// iff, holding untainted inputs to their possible values, some assignment
// of the tainted inputs changes the output. For AND, a tainted input leaks
// unless the other input is a definite controlling 0 — "other can be 1"
// (bH) widened by the other side's own taint (bT, which lets it range over
// {0,1}). OR is the dual with controlling 1. XOR always propagates taint
// (no controlling value). For MUX, a tainted select leaks iff the two data
// inputs can differ, comparing taint-widened rails (a tainted data lane can
// be either value).
func bsAnd(aL, aH, aT, bL, bH, bT uint64) (l, h, t uint64) {
	h = aH & bH
	l = aL | bL
	t = aT&(bT|bH) | bT&aH
	return
}

func bsOr(aL, aH, aT, bL, bH, bT uint64) (l, h, t uint64) {
	h = aH | bH
	l = aL & bL
	t = aT&(bT|bL) | bT&aL
	return
}

func bsXor(aL, aH, aT, bL, bH, bT uint64) (l, h, t uint64) {
	h = aH&bL | aL&bH
	l = aL&bL | aH&bH
	t = aT | bT
	return
}

func bsMux(sL, sH, sT, aL, aH, aT, bL, bH, bT uint64) (l, h, t uint64) {
	l = sL&aL | sH&bL
	h = sL&aH | sH&bH
	a0, a1 := aL|aT, aH|aT // taint-widened rails of the sel=0 input
	b0, b1 := bL|bT, bH|bT
	t = sL&aT | sH&bT | sT&(a0&b1|a1&b0)
	return
}

func (c *bitslice) evalGate(p int32) (l, h, t uint64) {
	switch logic.Op(c.op[p]) {
	case logic.Const0:
		return ^uint64(0), 0, 0
	case logic.Const1:
		return 0, ^uint64(0), 0
	case logic.Buf:
		a := c.in0[p]
		return c.pl[a], c.ph[a], c.pt[a]
	case logic.Not:
		a := c.in0[p]
		return c.ph[a], c.pl[a], c.pt[a]
	case logic.And:
		a, b := c.in0[p], c.in1[p]
		return bsAnd(c.pl[a], c.ph[a], c.pt[a], c.pl[b], c.ph[b], c.pt[b])
	case logic.Nand:
		a, b := c.in0[p], c.in1[p]
		l, h, t = bsAnd(c.pl[a], c.ph[a], c.pt[a], c.pl[b], c.ph[b], c.pt[b])
		return h, l, t
	case logic.Or:
		a, b := c.in0[p], c.in1[p]
		return bsOr(c.pl[a], c.ph[a], c.pt[a], c.pl[b], c.ph[b], c.pt[b])
	case logic.Nor:
		a, b := c.in0[p], c.in1[p]
		l, h, t = bsOr(c.pl[a], c.ph[a], c.pt[a], c.pl[b], c.ph[b], c.pt[b])
		return h, l, t
	case logic.Xor:
		a, b := c.in0[p], c.in1[p]
		return bsXor(c.pl[a], c.ph[a], c.pt[a], c.pl[b], c.ph[b], c.pt[b])
	case logic.Xnor:
		a, b := c.in0[p], c.in1[p]
		l, h, t = bsXor(c.pl[a], c.ph[a], c.pt[a], c.pl[b], c.ph[b], c.pt[b])
		return h, l, t
	default: // logic.Mux
		s, a, b := c.in0[p], c.in1[p], c.in2[p]
		return bsMux(c.pl[s], c.ph[s], c.pt[s],
			c.pl[a], c.ph[a], c.pt[a],
			c.pl[b], c.ph[b], c.pt[b])
	}
}

// clockPlanes commits flip-flop next states across all lanes and returns
// lane 0's value-transition count (the scalar Backend contract). Per-lane
// counts, when enabled, accumulate into c.toggles for lanes in c.active.
func (c *bitslice) clockPlanes() uint64 {
	dffs := c.nl.DFFs
	for i := range dffs {
		d := &dffs[i]
		hL, hH, hT := bsMux(c.pl[d.En], c.ph[d.En], c.pt[d.En],
			c.pl[d.Q], c.ph[d.Q], c.pt[d.Q],
			c.pl[d.D], c.ph[d.D], c.pt[d.D])
		var rL, rH uint64
		if c.rstOne[i] {
			rH = ^uint64(0)
		} else {
			rL = ^uint64(0)
		}
		c.tmpL[i], c.tmpH[i], c.tmpT[i] = bsMux(c.pl[d.Rst], c.ph[d.Rst], c.pt[d.Rst],
			hL, hH, hT, rL, rH, 0)
	}
	var t0 uint64
	act := c.active & c.laneMask
	for i := range dffs {
		q := dffs[i].Q
		oL, oH, oT := c.pl[q], c.ph[q], c.pt[q]
		nL, nH, nT := c.tmpL[i], c.tmpH[i], c.tmpT[i]
		if diff := ((oL ^ nL) | (oH ^ nH)) & act; diff != 0 {
			t0 += diff & 1
			if c.countLanes {
				for w := diff; w != 0; w &= w - 1 {
					c.toggles[bits.TrailingZeros64(w)]++
				}
			}
		}
		if oL != nL || oH != nH || oT != nT {
			c.pl[q], c.ph[q], c.pt[q] = nL, nH, nT
			if c.shadow != nil {
				c.shadow[q] = c.packLane0(q)
			}
			if !c.needFull {
				c.pending = append(c.pending, q)
			}
		}
	}
	return t0
}

func (c *bitslice) Clock() uint64 { return c.clockPlanes() }

func (c *bitslice) DFFState() []logic.Packed {
	out := make([]logic.Packed, len(c.nl.DFFs))
	for i, d := range c.nl.DFFs {
		out[i] = c.Get(d.Q)
	}
	return out
}

func (c *bitslice) RestoreDFFState(st []logic.Packed) {
	for i, d := range c.nl.DFFs {
		l, h, t := sigPlanes(logic.Unpack(st[i]))
		c.pl[d.Q], c.ph[d.Q], c.pt[d.Q] = l, h, t
		if c.shadow != nil {
			c.shadow[d.Q] = st[i]
		}
	}
	c.pending = c.pending[:0]
	c.needFull = true
}
