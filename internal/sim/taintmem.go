package sim

import (
	"fmt"

	"repro/internal/logic"
)

// TaintMem models a byte-addressable memory region where every bit carries
// (value, X, taint), matching the paper's per-cycle tainted state over
// "gates and memory bits". It also implements the conservative semantics for
// accesses whose address contains unknown (X) bits: a store may hit any
// matching location, so all of them absorb a merge of old and new contents;
// a load may return any matching location, so the result is the merge of all
// of them. The address's own taint joins the data taint in both directions —
// this is exactly the mechanism by which an unmasked tainted store address
// taints an entire data memory in Figure 9 of the paper, and by which
// software masking (which pins the upper address bits) provably confines the
// taint to one partition.
type TaintMem struct {
	base uint16
	size int
	val  []uint8 // value bits
	xm   []uint8 // X mask: 1 = unknown bit
	tt   []uint8 // taint mask: 1 = tainted bit
}

// NewTaintMem creates a region covering [base, base+size). Initial contents
// are untainted X (Algorithm 1 line 2).
func NewTaintMem(base uint16, size int) *TaintMem {
	m := &TaintMem{
		base: base,
		size: size,
		val:  make([]uint8, size),
		xm:   make([]uint8, size),
		tt:   make([]uint8, size),
	}
	for i := range m.xm {
		m.xm[i] = 0xff
	}
	return m
}

// Base returns the first covered address; Size the number of bytes.
func (m *TaintMem) Base() uint16 { return m.base }
func (m *TaintMem) Size() int    { return m.size }

// FootprintBytes approximates the heap footprint of the region: three
// byte-planes (value, X-mask, taint) plus the struct header. It is the
// basis of the analysis engine's snapshot memory accounting.
func (m *TaintMem) FootprintBytes() int64 { return 3*int64(m.size) + 64 }

// Contains reports whether addr falls inside the region.
func (m *TaintMem) Contains(addr uint16) bool {
	off := int(addr) - int(m.base)
	return off >= 0 && off < m.size
}

// Word carries a 16-bit GLIFT-tracked value as three bit masks.
type Word struct {
	Val uint16
	XM  uint16 // unknown bits
	TT  uint16 // tainted bits
}

// Concrete reports whether no bit is X.
func (w Word) Concrete() bool { return w.XM == 0 }

// Tainted reports whether any bit is tainted.
func (w Word) Tainted() bool { return w.TT != 0 }

// Sig returns bit i as a logic signal.
func (w Word) Sig(i int) logic.Sig {
	v := logic.FromBool(w.Val>>uint(i)&1 == 1)
	if w.XM>>uint(i)&1 == 1 {
		v = logic.X
	}
	return logic.S(v, w.TT>>uint(i)&1 == 1)
}

// ConcreteWord builds an untainted concrete Word.
func ConcreteWord(v uint16) Word { return Word{Val: v} }

// String renders the word for diagnostics, e.g. "0x12xx*".
func (w Word) String() string {
	s := ""
	for i := 15; i >= 0; i-- {
		if w.XM>>uint(i)&1 == 1 {
			s += "X"
		} else {
			s += fmt.Sprintf("%d", w.Val>>uint(i)&1)
		}
	}
	if w.Tainted() {
		s += "*"
	}
	return s
}

// Merge joins two words conservatively.
func MergeWords(a, b Word) Word {
	xm := a.XM | b.XM | (a.Val ^ b.Val)
	return Word{Val: a.Val &^ xm, XM: xm, TT: a.TT | b.TT}
}

func (m *TaintMem) idx(addr uint16) int { return int(addr) - int(m.base) }

// LoadByte returns one byte as a Word-style triple in the low 8 bits.
func (m *TaintMem) LoadByte(addr uint16) Word {
	i := m.idx(addr)
	return Word{Val: uint16(m.val[i]), XM: uint16(m.xm[i]), TT: uint16(m.tt[i])}
}

// LoadWord returns the aligned 16-bit word containing addr.
func (m *TaintMem) LoadWord(addr uint16) Word {
	a := addr &^ 1
	lo, hi := m.idx(a), m.idx(a+1)
	return Word{
		Val: uint16(m.val[lo]) | uint16(m.val[hi])<<8,
		XM:  uint16(m.xm[lo]) | uint16(m.xm[hi])<<8,
		TT:  uint16(m.tt[lo]) | uint16(m.tt[hi])<<8,
	}
}

// StoreByte overwrites one byte.
func (m *TaintMem) StoreByte(addr uint16, w Word) {
	i := m.idx(addr)
	m.val[i] = uint8(w.Val)
	m.xm[i] = uint8(w.XM)
	m.tt[i] = uint8(w.TT)
}

// StoreWord overwrites the aligned word containing addr.
func (m *TaintMem) StoreWord(addr uint16, w Word) {
	a := addr &^ 1
	lo, hi := m.idx(a), m.idx(a+1)
	m.val[lo], m.val[hi] = uint8(w.Val), uint8(w.Val>>8)
	m.xm[lo], m.xm[hi] = uint8(w.XM), uint8(w.XM>>8)
	m.tt[lo], m.tt[hi] = uint8(w.TT), uint8(w.TT>>8)
}

// MergeStoreWord conservatively merges w into the aligned word at addr
// (used when a store *may* target this location).
func (m *TaintMem) MergeStoreWord(addr uint16, w Word) {
	m.StoreWord(addr, MergeWords(m.LoadWord(addr), w))
}

// MergeStoreByte conservatively merges a byte.
func (m *TaintMem) MergeStoreByte(addr uint16, w Word) {
	old := m.LoadByte(addr)
	merged := MergeWords(old, Word{Val: w.Val & 0xff, XM: w.XM & 0xff, TT: w.TT & 0xff})
	m.StoreByte(addr, merged)
}

// ForEachMatch visits every address in the region compatible with the
// partially-unknown address pattern (concrete bits must match; X bits are
// free). The visitor receives each candidate address.
func (m *TaintMem) ForEachMatch(addr Word, f func(a uint16)) {
	fixed := ^addr.XM
	want := addr.Val & fixed
	for off := 0; off < m.size; off++ {
		a := m.base + uint16(off)
		if a&fixed == want {
			f(a)
		}
	}
}

// ForEachMatchRelaxed is ForEachMatch with an explicit free-bit mask (used
// when tainted address bits must also be treated as attacker-controlled).
func (m *TaintMem) ForEachMatchRelaxed(free, want uint16, f func(a uint16)) {
	fixed := ^free
	for off := 0; off < m.size; off++ {
		a := m.base + uint16(off)
		if a&fixed == want {
			f(a)
		}
	}
}

// TaintedBytes counts bytes with at least one tainted bit in [lo, hi).
func (m *TaintMem) TaintedBytes(lo, hi uint16) int {
	n := 0
	for a := uint32(lo); a < uint32(hi); a++ {
		if m.Contains(uint16(a)) && m.tt[m.idx(uint16(a))] != 0 {
			n++
		}
	}
	return n
}

// AnyTaint reports whether any byte in [lo, hi) is tainted.
func (m *TaintMem) AnyTaint(lo, hi uint16) bool { return m.TaintedBytes(lo, hi) > 0 }

// ClearTaint removes taint (but not X-ness) from [lo, hi).
func (m *TaintMem) ClearTaint(lo, hi uint16) {
	for a := uint32(lo); a < uint32(hi); a++ {
		if m.Contains(uint16(a)) {
			m.tt[m.idx(uint16(a))] = 0
		}
	}
}

// SetTaint marks every bit in [lo, hi) tainted.
func (m *TaintMem) SetTaint(lo, hi uint16) {
	for a := uint32(lo); a < uint32(hi); a++ {
		if m.Contains(uint16(a)) {
			m.tt[m.idx(uint16(a))] = 0xff
		}
	}
}

// Snapshot returns a deep copy of the region's state.
func (m *TaintMem) Snapshot() *TaintMem {
	c := &TaintMem{base: m.base, size: m.size,
		val: append([]uint8(nil), m.val...),
		xm:  append([]uint8(nil), m.xm...),
		tt:  append([]uint8(nil), m.tt...),
	}
	return c
}

// Restore copies state from a snapshot taken on a congruent region.
func (m *TaintMem) Restore(s *TaintMem) {
	if s.base != m.base || s.size != m.size {
		panic("sim: snapshot region mismatch")
	}
	copy(m.val, s.val)
	copy(m.xm, s.xm)
	copy(m.tt, s.tt)
}

// Substate reports whether m's state is covered by the (potentially more
// conservative) state c: everywhere c must be X or agree, and c's taint must
// include m's.
func (m *TaintMem) Substate(c *TaintMem) bool {
	for i := range m.val {
		if m.tt[i]&^c.tt[i] != 0 {
			return false
		}
		// Bits where c is concrete must be concrete and equal in m.
		fixed := ^c.xm[i]
		if m.xm[i]&fixed != 0 {
			return false
		}
		if (m.val[i]^c.val[i])&fixed != 0 {
			return false
		}
	}
	return true
}

// MergeFrom widens m to cover o as well (conservative join).
func (m *TaintMem) MergeFrom(o *TaintMem) {
	for i := range m.val {
		diff := m.val[i] ^ o.val[i]
		m.xm[i] |= o.xm[i] | diff
		m.val[i] &^= m.xm[i]
		m.tt[i] |= o.tt[i]
	}
}

// Fill writes concrete untainted bytes (for loading initial data).
func (m *TaintMem) Fill(addr uint16, data []byte) {
	for i, b := range data {
		m.StoreByte(addr+uint16(i), Word{Val: uint16(b)})
	}
}
