package sim

import (
	"testing"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// buildCounter builds a 4-bit counter with synchronous reset: a small
// sequential circuit exercising Eval/Clock/forcing/snapshots.
func buildCounter(t *testing.T) (*netlist.Netlist, *Circuit, []netlist.NetID, netlist.NetID) {
	t.Helper()
	nl := netlist.New()
	rst := nl.AddInput("rst")
	q := make([]netlist.NetID, 4)
	d := make([]netlist.NetID, 4)
	for i := range q {
		q[i] = nl.NewNet("")
		d[i] = nl.NewNet("")
		nl.AddDFF(q[i], d[i], rst, nl.Const1(), logic.Zero)
	}
	// d = q + 1 (ripple increment).
	carry := nl.Const1()
	for i := range q {
		sum := nl.NewNet("")
		nl.AddGate(logic.Xor, sum, q[i], carry)
		nc := nl.NewNet("")
		nl.AddGate(logic.And, nc, q[i], carry)
		nl.AddGate(logic.Buf, d[i], sum)
		carry = nc
	}
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	c, err := NewCircuit(nl)
	if err != nil {
		t.Fatal(err)
	}
	return nl, c, q, rst
}

func TestCircuitCounts(t *testing.T) {
	_, c, q, rst := buildCounter(t)
	c.SetInput(rst, logic.One0)
	c.Eval(nil)
	c.Clock()
	c.SetInput(rst, logic.Zero0)
	for i := 0; i < 11; i++ {
		c.Eval(nil)
		c.Clock()
	}
	c.Eval(nil)
	v, known, tainted := c.GetWord(q)
	if !known || tainted || v != 11 {
		t.Fatalf("counter = %d (known=%v tainted=%v)", v, known, tainted)
	}
}

func TestCircuitInitX(t *testing.T) {
	_, c, q, _ := buildCounter(t)
	c.Eval(nil)
	if _, known, _ := c.GetWord(q); known {
		t.Fatal("uninitialized flip-flops should be X")
	}
	if c.Get(c.Netlist().Const1()) != logic.One0 {
		t.Fatal("const1 wrong after InitX")
	}
}

func TestCircuitForcedEval(t *testing.T) {
	_, c, q, rst := buildCounter(t)
	c.SetInput(rst, logic.One0)
	c.Eval(nil)
	c.Clock()
	c.SetInput(rst, logic.Zero0)
	// Force the low Q bit high during evaluation: the increment logic must
	// see the forced value.
	forced := map[netlist.NetID]logic.Sig{q[0]: logic.One0}
	c.Eval(forced)
	c.Clock()
	c.Eval(nil)
	v, _, _ := c.GetWord(q)
	if v != 2 { // 1 + 1
		t.Fatalf("forced increment = %d, want 2", v)
	}
}

func TestCircuitSetWordTaint(t *testing.T) {
	nl := netlist.New()
	in := make([]netlist.NetID, 4)
	for i := range in {
		in[i] = nl.AddInput("")
	}
	out := nl.NewNet("out")
	nl.AddGate(logic.Or, out, in[0], in[1])
	c, err := NewCircuit(nl)
	if err != nil {
		t.Fatal(err)
	}
	c.SetWord(in, 0b0011, true)
	c.Eval(nil)
	if got := c.Get(out); got.V != logic.One || !got.T {
		t.Fatalf("or out = %s", got)
	}
	if v, known, tainted := c.GetWord(in); v != 3 || !known || !tainted {
		t.Fatalf("GetWord = %d %v %v", v, known, tainted)
	}
}

func TestDFFStateSnapshot(t *testing.T) {
	_, c, q, rst := buildCounter(t)
	c.SetInput(rst, logic.One0)
	c.Eval(nil)
	c.Clock()
	c.SetInput(rst, logic.Zero0)
	for i := 0; i < 5; i++ {
		c.Eval(nil)
		c.Clock()
	}
	snap := c.DFFState()
	for i := 0; i < 3; i++ {
		c.Eval(nil)
		c.Clock()
	}
	c.RestoreDFFState(snap)
	c.Eval(nil)
	if v, _, _ := c.GetWord(q); v != 5 {
		t.Fatalf("restored counter = %d, want 5", v)
	}
}

func TestTogglesCounted(t *testing.T) {
	_, c, _, rst := buildCounter(t)
	c.SetInput(rst, logic.One0)
	c.Eval(nil)
	c.Clock()
	c.SetInput(rst, logic.Zero0)
	before := c.Toggles
	for i := 0; i < 8; i++ {
		c.Eval(nil)
		c.Clock()
	}
	// A 4-bit counter over 8 increments toggles bit0 8x, bit1 4x, bit2 2x,
	// bit3 1x = 15 transitions.
	if got := c.Toggles - before; got != 15 {
		t.Fatalf("toggles = %d, want 15", got)
	}
}

// The Figure 7 tainted-reset law at circuit level: an asserted tainted
// reset forces the value but keeps taint; an untainted one cleans fully.
func TestCircuitTaintedResetLaw(t *testing.T) {
	nl := netlist.New()
	rst := nl.AddInput("rst")
	d := nl.AddInput("d")
	q := nl.NewNet("q")
	nl.AddDFF(q, d, rst, nl.Const1(), logic.Zero)
	c, err := NewCircuit(nl)
	if err != nil {
		t.Fatal(err)
	}
	c.SetInput(d, logic.One1) // tainted 1
	c.SetInput(rst, logic.Zero0)
	c.Eval(nil)
	c.Clock()
	if got := c.Get(q); got != logic.One1 {
		t.Fatalf("loaded %s", got)
	}
	c.SetInput(rst, logic.One1) // tainted reset
	c.Eval(nil)
	c.Clock()
	if got := c.Get(q); got.V != logic.Zero || !got.T {
		t.Fatalf("tainted reset -> %s, want 0*", got)
	}
	c.SetInput(rst, logic.One0) // untainted reset
	c.Eval(nil)
	c.Clock()
	if got := c.Get(q); got != logic.Zero0 {
		t.Fatalf("untainted reset -> %s, want clean 0", got)
	}
}
