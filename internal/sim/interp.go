package sim

import (
	"repro/internal/logic"
	"repro/internal/netlist"
)

// interp is the reference evaluation backend: every Eval sweeps the full
// levelized gate list through a per-gate switch. It is the original
// simulator core, kept as the semantic baseline the compiled backend is
// byte-compared against.
type interp struct {
	nl    *netlist.Netlist
	order []int32
	v     []logic.Packed // current value of every net
	tmp   []logic.Packed // scratch for DFF next-state computation

	// forcedStamp/epoch implement the forced-net overlay: nets forced in
	// the current Eval carry the current epoch, so skipping a forced gate
	// output costs one array read instead of a map probe per gate.
	forcedStamp []uint64
	epoch       uint64
}

func newInterp(nl *netlist.Netlist) (*interp, error) {
	lv, err := nl.Levelize()
	if err != nil {
		return nil, err
	}
	return &interp{
		nl:          nl,
		order:       lv.Order,
		v:           make([]logic.Packed, nl.NumNets()),
		tmp:         make([]logic.Packed, len(nl.DFFs)),
		forcedStamp: make([]uint64, nl.NumNets()),
	}, nil
}

func (c *interp) vals() []logic.Packed { return c.v }

func (c *interp) Get(id netlist.NetID) logic.Packed { return c.v[id] }

func (c *interp) Set(id netlist.NetID, p logic.Packed) { c.v[id] = p }

func (c *interp) InitX() {
	xp := logic.Pack(logic.X0)
	for i := range c.v {
		c.v[i] = xp
	}
	c.v[c.nl.Const0()] = logic.Pack(logic.Zero0)
	c.v[c.nl.Const1()] = logic.Pack(logic.One0)
}

func (c *interp) Eval(forced map[netlist.NetID]logic.Sig) {
	gates := c.nl.Gates
	vals := c.v
	hasForced := len(forced) > 0
	ep := c.epoch
	if hasForced {
		c.epoch++
		ep = c.epoch
		for id, s := range forced {
			c.forcedStamp[id] = ep
			vals[id] = logic.Pack(s)
		}
	}
	stamp := c.forcedStamp
	for _, gi := range c.order {
		g := &gates[gi]
		if hasForced && stamp[g.Out] == ep {
			continue
		}
		switch g.Op.Arity() {
		case 1:
			vals[g.Out] = logic.Eval1(g.Op, vals[g.In[0]])
		case 2:
			vals[g.Out] = logic.Eval2(g.Op, vals[g.In[0]], vals[g.In[1]])
		case 3:
			vals[g.Out] = logic.EvalMux(vals[g.In[0]], vals[g.In[1]], vals[g.In[2]])
		default: // constants
			if g.Op == logic.Const1 {
				vals[g.Out] = logic.Pack(logic.One0)
			} else {
				vals[g.Out] = logic.Pack(logic.Zero0)
			}
		}
	}
}

func (c *interp) Clock() uint64 {
	dffs := c.nl.DFFs
	vals := c.v
	for i := range dffs {
		d := &dffs[i]
		held := logic.EvalMux(vals[d.En], vals[d.Q], vals[d.D])
		rv := logic.Pack(logic.S(d.RstVal, false))
		c.tmp[i] = logic.EvalMux(vals[d.Rst], held, rv)
	}
	var toggles uint64
	for i := range dffs {
		q := dffs[i].Q
		if (vals[q]^c.tmp[i])&3 != 0 {
			toggles++
		}
		vals[q] = c.tmp[i]
	}
	return toggles
}

func (c *interp) DFFState() []logic.Packed {
	out := make([]logic.Packed, len(c.nl.DFFs))
	for i, d := range c.nl.DFFs {
		out[i] = c.v[d.Q]
	}
	return out
}

func (c *interp) RestoreDFFState(st []logic.Packed) {
	for i, d := range c.nl.DFFs {
		c.v[d.Q] = st[i]
	}
}
