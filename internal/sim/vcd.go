package sim

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// VCDWriter streams selected nets of a simulated circuit as a Value Change
// Dump, the standard waveform interchange format. Taint is emitted as a
// parallel signal per net (suffix _taint), so ordinary waveform viewers can
// display information flow alongside logic values.
type VCDWriter struct {
	w     *bufio.Writer
	c     *Circuit
	nets  []netlist.NetID
	ids   []string // VCD identifier codes, value signal
	tids  []string // identifier codes, taint signal
	last  []logic.Sig
	first bool
	t     uint64
}

// NewVCDWriter prepares a dump of the named nets (in the given order). The
// header is written immediately.
func NewVCDWriter(w io.Writer, c *Circuit, names []string) (*VCDWriter, error) {
	v := &VCDWriter{w: bufio.NewWriter(w), c: c, first: true}
	nl := c.Netlist()
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	for _, name := range sorted {
		id, ok := nl.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("sim: vcd net %q not found", name)
		}
		v.nets = append(v.nets, id)
	}
	fmt.Fprintln(v.w, "$date repro gate-level simulator $end")
	fmt.Fprintln(v.w, "$timescale 1ns $end")
	fmt.Fprintln(v.w, "$scope module top $end")
	for i, name := range sorted {
		vid := vcdID(2 * i)
		tid := vcdID(2*i + 1)
		v.ids = append(v.ids, vid)
		v.tids = append(v.tids, tid)
		clean := strings.ReplaceAll(name, " ", "_")
		fmt.Fprintf(v.w, "$var wire 1 %s %s $end\n", vid, clean)
		fmt.Fprintf(v.w, "$var wire 1 %s %s_taint $end\n", tid, clean)
	}
	fmt.Fprintln(v.w, "$upscope $end")
	fmt.Fprintln(v.w, "$enddefinitions $end")
	v.last = make([]logic.Sig, len(v.nets))
	return v, nil
}

// vcdID generates the compact printable identifier codes VCD uses.
func vcdID(n int) string {
	const chars = "!\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	if n < len(chars) {
		return string(chars[n])
	}
	return string(chars[n%len(chars)]) + vcdID(n/len(chars)-1)
}

func vcdVal(s logic.Sig) byte {
	switch s.V {
	case logic.Zero:
		return '0'
	case logic.One:
		return '1'
	default:
		return 'x'
	}
}

// Sample records the watched nets' current values at the next timestep.
// Call after each Eval (typically once per clock cycle).
func (v *VCDWriter) Sample() {
	wrote := false
	stamp := func() {
		if !wrote {
			fmt.Fprintf(v.w, "#%d\n", v.t)
			wrote = true
		}
	}
	for i, id := range v.nets {
		s := v.c.Get(id)
		if v.first || s.V != v.last[i].V {
			stamp()
			fmt.Fprintf(v.w, "%c%s\n", vcdVal(s), v.ids[i])
		}
		if v.first || s.T != v.last[i].T {
			stamp()
			tb := byte('0')
			if s.T {
				tb = '1'
			}
			fmt.Fprintf(v.w, "%c%s\n", tb, v.tids[i])
		}
		v.last[i] = s
	}
	v.first = false
	v.t++
}

// Flush finishes the dump.
func (v *VCDWriter) Flush() error { return v.w.Flush() }
