// Package sim provides cycle-accurate simulation of gate-level netlists
// with GLIFT-tracked ternary signals, plus the behavioural memory model and
// the machine-level harness used to symbolically execute a whole
// microcontroller system (processor netlist + program/data memories +
// memory-mapped peripherals).
package sim

import (
	"repro/internal/logic"
	"repro/internal/netlist"
)

// Circuit simulates one netlist. The host drives it in phases each cycle:
// set primary inputs, call Eval (possibly several times, interleaved with
// behavioural memory reads that feed results back into inputs), then Clock
// to commit flip-flop state.
type Circuit struct {
	nl    *netlist.Netlist
	order []int32
	vals  []logic.Packed // current value of every net
	tmp   []logic.Packed // scratch for DFF next-state computation

	// Toggles counts flip-flop output bit transitions across Clock calls,
	// the activity measure used by the energy model.
	Toggles uint64
}

// NewCircuit levelizes and wraps the netlist. The initial state follows the
// paper's Algorithm 1: every flip-flop holds an untainted X; inputs default
// to untainted X.
func NewCircuit(nl *netlist.Netlist) (*Circuit, error) {
	order, err := nl.Levelize()
	if err != nil {
		return nil, err
	}
	c := &Circuit{
		nl:    nl,
		order: order,
		vals:  make([]logic.Packed, nl.NumNets()),
		tmp:   make([]logic.Packed, len(nl.DFFs)),
	}
	c.InitX()
	return c, nil
}

// Netlist returns the underlying netlist.
func (c *Circuit) Netlist() *netlist.Netlist { return c.nl }

// InitX resets every net — including all flip-flop outputs — to untainted X
// (Algorithm 1, line 2).
func (c *Circuit) InitX() {
	xp := logic.Pack(logic.X0)
	for i := range c.vals {
		c.vals[i] = xp
	}
	c.vals[c.nl.Const0()] = logic.Pack(logic.Zero0)
	c.vals[c.nl.Const1()] = logic.Pack(logic.One0)
}

// SetInput drives a primary input (or, in forced evaluations, any net; for
// ordinary use only inputs should be set).
func (c *Circuit) SetInput(id netlist.NetID, s logic.Sig) {
	c.vals[id] = logic.Pack(s)
}

// Get returns the current signal on a net (valid after Eval).
func (c *Circuit) Get(id netlist.NetID) logic.Sig {
	return logic.Unpack(c.vals[id])
}

// GetWord assembles a multi-bit value from nets (LSB first). The second
// result is true only if every bit is a known 0/1. The third reports whether
// any bit is tainted.
func (c *Circuit) GetWord(bits []netlist.NetID) (val uint64, known bool, tainted bool) {
	known = true
	for i, b := range bits {
		s := logic.Unpack(c.vals[b])
		switch s.V {
		case logic.One:
			val |= 1 << uint(i)
		case logic.X:
			known = false
		}
		if s.T {
			tainted = true
		}
	}
	return val, known, tainted
}

// SetWord drives a vector of nets with the bits of val and a common taint.
func (c *Circuit) SetWord(bits []netlist.NetID, val uint64, t bool) {
	for i, b := range bits {
		c.vals[b] = logic.Pack(logic.S(logic.FromBool(val>>uint(i)&1 == 1), t))
	}
}

// Eval propagates values through the combinational logic in levelized
// order. forced maps net IDs to values that override whatever their driver
// would produce; pass nil for a normal evaluation. Forcing is how the
// symbolic execution engine concretizes an unknown branch decision when the
// PC becomes X (Section 4.1 of the paper).
func (c *Circuit) Eval(forced map[netlist.NetID]logic.Sig) {
	gates := c.nl.Gates
	vals := c.vals
	if forced != nil {
		for id, s := range forced {
			vals[id] = logic.Pack(s)
		}
	}
	for _, gi := range c.order {
		g := &gates[gi]
		if forced != nil {
			if _, ok := forced[g.Out]; ok {
				continue
			}
		}
		switch g.Op.Arity() {
		case 1:
			vals[g.Out] = logic.Eval1(g.Op, vals[g.In[0]])
		case 2:
			vals[g.Out] = logic.Eval2(g.Op, vals[g.In[0]], vals[g.In[1]])
		case 3:
			vals[g.Out] = logic.EvalMux(vals[g.In[0]], vals[g.In[1]], vals[g.In[2]])
		default: // constants
			if g.Op == logic.Const1 {
				vals[g.Out] = logic.Pack(logic.One0)
			} else {
				vals[g.Out] = logic.Pack(logic.Zero0)
			}
		}
	}
}

// Clock commits flip-flop next states, implementing the synchronous
// semantics  q' = mux(rst, mux(en, q, d), rstval)  with the GLIFT mux rule,
// which gives exactly the tainted-reset behaviour of Figure 7: an asserted
// untainted reset fully cleans a bit, an asserted tainted reset forces the
// value but keeps it tainted.
func (c *Circuit) Clock() {
	dffs := c.nl.DFFs
	vals := c.vals
	for i := range dffs {
		d := &dffs[i]
		held := logic.EvalMux(vals[d.En], vals[d.Q], vals[d.D])
		rv := logic.Pack(logic.S(d.RstVal, false))
		c.tmp[i] = logic.EvalMux(vals[d.Rst], held, rv)
	}
	for i := range dffs {
		q := dffs[i].Q
		if (vals[q]^c.tmp[i])&3 != 0 {
			c.Toggles++
		}
		vals[q] = c.tmp[i]
	}
}

// DFFState returns a copy of the current flip-flop output values, the
// register portion of a machine state snapshot.
func (c *Circuit) DFFState() []logic.Packed {
	out := make([]logic.Packed, len(c.nl.DFFs))
	for i, d := range c.nl.DFFs {
		out[i] = c.vals[d.Q]
	}
	return out
}

// RestoreDFFState installs previously captured flip-flop outputs. The host
// must Eval afterwards before reading any combinational net.
func (c *Circuit) RestoreDFFState(st []logic.Packed) {
	for i, d := range c.nl.DFFs {
		c.vals[d.Q] = st[i]
	}
}
