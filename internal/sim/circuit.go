// Package sim provides cycle-accurate simulation of gate-level netlists
// with GLIFT-tracked ternary signals, plus the behavioural memory model and
// the machine-level harness used to symbolically execute a whole
// microcontroller system (processor netlist + program/data memories +
// memory-mapped peripherals).
package sim

import (
	"repro/internal/logic"
	"repro/internal/netlist"
)

// Circuit simulates one netlist. The host drives it in phases each cycle:
// set primary inputs, call Eval (possibly several times, interleaved with
// behavioural memory reads that feed results back into inputs), then Clock
// to commit flip-flop state.
//
// The actual gate evaluation is delegated to a pluggable Backend; see
// BackendKind for the available engines. All backends are observationally
// identical — same net values, same toggle counts — so the choice only
// affects speed.
type Circuit struct {
	nl   *netlist.Netlist
	be   Backend
	kind BackendKind
	v    []logic.Packed // the backend's dense value array (read-only here)

	// Toggles counts flip-flop output bit transitions across Clock calls,
	// the activity measure used by the energy model.
	Toggles uint64
}

// NewCircuit wraps the netlist with the default (compiled) backend. The
// initial state follows the paper's Algorithm 1: every flip-flop holds an
// untainted X; inputs default to untainted X.
func NewCircuit(nl *netlist.Netlist) (*Circuit, error) {
	return NewCircuitBackend(nl, BackendCompiled)
}

// NewCircuitBackend wraps the netlist with an explicit evaluation backend.
func NewCircuitBackend(nl *netlist.Netlist, kind BackendKind) (*Circuit, error) {
	be, err := newBackend(nl, kind)
	if err != nil {
		return nil, err
	}
	c := &Circuit{nl: nl, be: be, kind: kind, v: be.vals()}
	c.InitX()
	return c, nil
}

// Netlist returns the underlying netlist.
func (c *Circuit) Netlist() *netlist.Netlist { return c.nl }

// Backend returns the evaluation backend kind this circuit runs on.
func (c *Circuit) Backend() BackendKind { return c.kind }

// InitX resets every net — including all flip-flop outputs — to untainted X
// (Algorithm 1, line 2).
func (c *Circuit) InitX() { c.be.InitX() }

// SetInput drives a primary input (or, in forced evaluations, any net; for
// ordinary use only inputs should be set).
func (c *Circuit) SetInput(id netlist.NetID, s logic.Sig) {
	c.be.Set(id, logic.Pack(s))
}

// Get returns the current signal on a net (valid after Eval).
func (c *Circuit) Get(id netlist.NetID) logic.Sig {
	return logic.Unpack(c.v[id])
}

// GetWord assembles a multi-bit value from nets (LSB first). The second
// result is true only if every bit is a known 0/1. The third reports whether
// any bit is tainted.
func (c *Circuit) GetWord(bits []netlist.NetID) (val uint64, known bool, tainted bool) {
	known = true
	for i, b := range bits {
		s := logic.Unpack(c.v[b])
		switch s.V {
		case logic.One:
			val |= 1 << uint(i)
		case logic.X:
			known = false
		}
		if s.T {
			tainted = true
		}
	}
	return val, known, tainted
}

// SetWord drives a vector of nets with the bits of val and a common taint.
func (c *Circuit) SetWord(bits []netlist.NetID, val uint64, t bool) {
	for i, b := range bits {
		c.be.Set(b, logic.Pack(logic.S(logic.FromBool(val>>uint(i)&1 == 1), t)))
	}
}

// Eval propagates values through the combinational logic. forced maps net
// IDs to values that override whatever their driver would produce; pass nil
// for a normal evaluation. Forcing is how the symbolic execution engine
// concretizes an unknown branch decision when the PC becomes X (Section 4.1
// of the paper).
func (c *Circuit) Eval(forced map[netlist.NetID]logic.Sig) { c.be.Eval(forced) }

// Clock commits flip-flop next states, implementing the synchronous
// semantics  q' = mux(rst, mux(en, q, d), rstval)  with the GLIFT mux rule,
// which gives exactly the tainted-reset behaviour of Figure 7: an asserted
// untainted reset fully cleans a bit, an asserted tainted reset forces the
// value but keeps it tainted.
func (c *Circuit) Clock() { c.Toggles += c.be.Clock() }

// DFFState returns a copy of the current flip-flop output values, the
// register portion of a machine state snapshot.
func (c *Circuit) DFFState() []logic.Packed { return c.be.DFFState() }

// RestoreDFFState installs previously captured flip-flop outputs. The host
// must Eval afterwards before reading any combinational net.
func (c *Circuit) RestoreDFFState(st []logic.Packed) { c.be.RestoreDFFState(st) }
