package sim

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewTaintMemStartsUntaintedX(t *testing.T) {
	m := NewTaintMem(0x0200, 64)
	w := m.LoadWord(0x0210)
	if w.XM != 0xffff || w.TT != 0 {
		t.Fatalf("initial word = %s", w)
	}
	if !m.Contains(0x0200) || !m.Contains(0x023f) || m.Contains(0x0240) || m.Contains(0x01ff) {
		t.Fatal("Contains bounds wrong")
	}
	if m.Base() != 0x0200 || m.Size() != 64 {
		t.Fatal("accessors")
	}
}

func TestStoreLoadWordRoundTrip(t *testing.T) {
	m := NewTaintMem(0x0200, 64)
	w := Word{Val: 0xbeef, TT: 0x00ff}
	m.StoreWord(0x0204, w)
	if got := m.LoadWord(0x0204); got != w {
		t.Fatalf("got %s want %s", got, w)
	}
	// Odd address aliases to the aligned word.
	if got := m.LoadWord(0x0205); got != w {
		t.Fatalf("unaligned load got %s", got)
	}
}

func TestStoreLoadByte(t *testing.T) {
	m := NewTaintMem(0, 16)
	m.StoreByte(3, Word{Val: 0xab, TT: 0x0f})
	b := m.LoadByte(3)
	if b.Val != 0xab || b.TT != 0x0f || b.XM != 0 {
		t.Fatalf("byte = %s", b)
	}
	// The byte lands in the high half of word 2.
	w := m.LoadWord(2)
	if w.Val>>8 != 0xab {
		t.Fatalf("word = %s", w)
	}
}

func TestMergeWordsLaws(t *testing.T) {
	f := func(a, b Word) bool {
		a.Val &^= a.XM // canonical: X bits carry value 0
		b.Val &^= b.XM
		m := MergeWords(a, b)
		// Upper bound: every concrete bit of m agrees with both.
		fixed := ^m.XM
		if (a.Val^m.Val)&fixed&^a.XM != 0 || (b.Val^m.Val)&fixed&^b.XM != 0 {
			return false
		}
		// Taint union.
		return m.TT == a.TT|b.TT && MergeWords(b, a) == m
	}
	cfg := &quick.Config{MaxCount: 2000, Values: func(vs []reflect.Value, r *rand.Rand) {
		for i := range vs {
			vs[i] = reflect.ValueOf(Word{Val: uint16(r.Uint32()), XM: uint16(r.Uint32()), TT: uint16(r.Uint32())})
		}
	}}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestMergeStore(t *testing.T) {
	m := NewTaintMem(0, 16)
	m.StoreWord(0, ConcreteWord(0x1234))
	m.MergeStoreWord(0, Word{Val: 0x1230, TT: 0xffff})
	w := m.LoadWord(0)
	if w.XM != 0x0004 { // only bit 2 differs
		t.Fatalf("merged XM = %#x", w.XM)
	}
	if w.TT != 0xffff {
		t.Fatal("taint not unioned")
	}
	m.StoreByte(4, Word{Val: 0x0f})
	m.MergeStoreByte(4, Word{Val: 0xf0})
	if b := m.LoadByte(4); b.XM != 0xff {
		t.Fatalf("byte merge XM = %#x", b.XM)
	}
}

func TestForEachMatch(t *testing.T) {
	m := NewTaintMem(0x0100, 32)
	// Address pattern: value 0x0104, bits 3..4 free -> 0x0104,0x010c,0x0114,0x011c
	var got []uint16
	m.ForEachMatch(Word{Val: 0x0104, XM: 0x0018}, func(a uint16) { got = append(got, a) })
	want := []uint16{0x0104, 0x010c, 0x0114, 0x011c}
	if len(got) != len(want) {
		t.Fatalf("matches = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("matches = %v", got)
		}
	}
	// Relaxed variant with an explicit free mask behaves the same.
	var got2 []uint16
	m.ForEachMatchRelaxed(0x0018, 0x0104, func(a uint16) { got2 = append(got2, a) })
	if len(got2) != len(want) {
		t.Fatalf("relaxed matches = %v", got2)
	}
}

func TestTaintAccounting(t *testing.T) {
	m := NewTaintMem(0x0200, 64)
	m.Fill(0x0200, make([]byte, 64))
	if m.AnyTaint(0x0200, 0x0240) {
		t.Fatal("fresh fill should be untainted")
	}
	m.SetTaint(0x0210, 0x0214)
	if n := m.TaintedBytes(0x0200, 0x0240); n != 4 {
		t.Fatalf("tainted bytes = %d", n)
	}
	m.ClearTaint(0x0210, 0x0212)
	if n := m.TaintedBytes(0x0200, 0x0240); n != 2 {
		t.Fatalf("after clear = %d", n)
	}
	// Out-of-range taint queries are safe.
	if m.TaintedBytes(0, 0x100) != 0 {
		t.Fatal("out of range count")
	}
}

func TestSnapshotRestoreSubstateMerge(t *testing.T) {
	m := NewTaintMem(0, 32)
	m.Fill(0, make([]byte, 32))
	snap := m.Snapshot()
	if !m.Substate(snap) || !snap.Substate(m) {
		t.Fatal("identical states should cover each other")
	}
	m.StoreWord(4, Word{Val: 0x5555, TT: 0x0001})
	if m.Substate(snap) {
		t.Fatal("changed state should not be a substate of the old one")
	}
	wider := snap.Snapshot()
	wider.MergeFrom(m)
	if !m.Substate(wider) || !snap.Substate(wider) {
		t.Fatal("merge is not an upper bound")
	}
	m.Restore(snap)
	if !m.Substate(snap) || m.AnyTaint(0, 32) {
		t.Fatal("restore failed")
	}
}

func TestRestorePanicsOnMismatch(t *testing.T) {
	a := NewTaintMem(0, 32)
	b := NewTaintMem(0, 64)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.Restore(b)
}

// Property: Substate is reflexive and monotone under MergeFrom.
func TestPropertySubstateMerge(t *testing.T) {
	rnd := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		a := NewTaintMem(0, 16)
		b := NewTaintMem(0, 16)
		for i := 0; i < 16; i += 2 {
			a.StoreWord(uint16(i), Word{Val: uint16(rnd.Uint32()) &^ uint16(rnd.Uint32()), XM: uint16(rnd.Uint32()) & 0xff, TT: uint16(rnd.Uint32())})
			b.StoreWord(uint16(i), Word{Val: uint16(rnd.Uint32()) &^ uint16(rnd.Uint32()), XM: uint16(rnd.Uint32()) & 0xff, TT: uint16(rnd.Uint32())})
		}
		// Canonicalize: X bits carry value 0 (as the simulator produces).
		for i := 0; i < 16; i += 2 {
			wa := a.LoadWord(uint16(i))
			wa.Val &^= wa.XM
			a.StoreWord(uint16(i), wa)
			wb := b.LoadWord(uint16(i))
			wb.Val &^= wb.XM
			b.StoreWord(uint16(i), wb)
		}
		if !a.Substate(a) {
			t.Fatal("not reflexive")
		}
		w := a.Snapshot()
		w.MergeFrom(b)
		if !a.Substate(w) || !b.Substate(w) {
			t.Fatal("merge not an upper bound")
		}
	}
}

func TestWordHelpers(t *testing.T) {
	w := Word{Val: 0x0001, XM: 0x0002, TT: 0x0004}
	if w.Concrete() {
		t.Fatal("X word is not concrete")
	}
	if !w.Tainted() {
		t.Fatal("tainted bit ignored")
	}
	if s := w.Sig(0); s.String() != "1" {
		t.Fatalf("bit 0 = %s", s)
	}
	if s := w.Sig(1); s.String() != "X" {
		t.Fatalf("bit 1 = %s", s)
	}
	if s := w.Sig(2); s.String() != "0*" {
		t.Fatalf("bit 2 = %s", s)
	}
	if ConcreteWord(7).String() != "0000000000000111" {
		t.Fatalf("string = %s", ConcreteWord(7))
	}
	tainted := Word{TT: 1}
	if tainted.String() != "0000000000000000*" {
		t.Fatalf("tainted string = %s", tainted)
	}
}
