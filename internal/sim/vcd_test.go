package sim

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/logic"
	"repro/internal/netlist"
)

func TestVCDDump(t *testing.T) {
	nl := netlist.New()
	in := nl.AddInput("in")
	q := nl.NewNet("state")
	sn := nl.NewNet("s_next")
	nl.AddGate(logic.Xor, sn, q, in)
	nl.AddDFF(q, sn, nl.Const0(), nl.Const1(), logic.Zero)
	c, err := NewCircuit(nl)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	v, err := NewVCDWriter(&buf, c, []string{"state", "in"})
	if err != nil {
		t.Fatal(err)
	}
	inputs := []logic.Sig{logic.Zero0, logic.One0, logic.One1, logic.Zero0}
	// Initialize the register concretely first.
	c.SetInput(in, logic.Zero0)
	c.Eval(nil)
	c.RestoreDFFState([]logic.Packed{logic.Pack(logic.Zero0)})
	for _, s := range inputs {
		c.SetInput(in, s)
		c.Eval(nil)
		v.Sample()
		c.Clock()
	}
	if err := v.Flush(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"$enddefinitions", "$var wire 1", "state_taint", "#0", "#2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("vcd missing %q:\n%s", want, out)
		}
	}
	// The tainted input at step 2 must flip the taint channel.
	if !strings.Contains(out, "#2") {
		t.Fatal("no change at the taint step")
	}
}

func TestVCDUnknownNet(t *testing.T) {
	nl := netlist.New()
	nl.AddInput("a")
	c, err := NewCircuit(nl)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewVCDWriter(&bytes.Buffer{}, c, []string{"missing"}); err == nil {
		t.Fatal("expected error for unknown net")
	}
}

func TestVCDIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 500; i++ {
		id := vcdID(i)
		if seen[id] {
			t.Fatalf("duplicate id %q at %d", id, i)
		}
		seen[id] = true
	}
}
