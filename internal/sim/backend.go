package sim

import (
	"fmt"
	"strings"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// Backend is a gate-evaluation engine for one netlist instance. Circuit owns
// exactly one and drives it through the per-cycle protocol: Set primary
// inputs, Eval the combinational logic (possibly several times with forced
// nets), Clock the flip-flops, snapshot/restore DFF state.
//
// Every backend must produce bit-identical net values for identical stimulus
// — the analysis engine's reports are byte-compared across backends by the
// differential suite — and identical Clock toggle counts, which feed the
// energy model. The unexported vals method closes the interface to this
// package: the wrapper reads the dense value array directly for its
// word-level accessors.
type Backend interface {
	// InitX resets every net — including all flip-flop outputs — to
	// untainted X, except the constant nets (Algorithm 1, line 2).
	InitX()
	// Get returns the packed signal on a net (valid after Eval).
	Get(id netlist.NetID) logic.Packed
	// Set drives a net, normally a primary input.
	Set(id netlist.NetID, p logic.Packed)
	// Eval propagates values through the combinational logic. forced maps
	// net IDs to values that override whatever their driver would produce;
	// nil for a normal evaluation.
	Eval(forced map[netlist.NetID]logic.Sig)
	// Clock commits flip-flop next states and returns the number of
	// flip-flop output value transitions (taint-only changes excluded).
	Clock() uint64
	// DFFState returns a copy of the flip-flop output values.
	DFFState() []logic.Packed
	// RestoreDFFState installs previously captured flip-flop outputs. The
	// host must Eval before reading any combinational net.
	RestoreDFFState(st []logic.Packed)

	// vals exposes the backend's dense per-net value array for the
	// wrapper's bulk reads. The host must treat it as read-only.
	vals() []logic.Packed
}

// BackendKind selects a Backend implementation.
type BackendKind uint8

const (
	// BackendCompiled is the default: the netlist is lowered once into a
	// flat instruction stream and evaluated change-driven — only gates
	// whose inputs actually changed are re-evaluated.
	BackendCompiled BackendKind = iota
	// BackendInterp is the reference interpreter: a full sweep of the
	// levelized gate list through a per-gate switch on every Eval.
	BackendInterp
	// BackendBitslice evaluates the netlist as three uint64 bit-planes per
	// net (64 lanes per word op, all lanes broadcast-identical behind the
	// scalar Backend interface); see bitslice.go and BatchBackend for the
	// per-lane batched form.
	BackendBitslice
)

// backendRegistry is the single source of backend names: every CLI flag,
// gliftd option and differential sweep derives its name list from it, so a
// new backend registers exactly once. Order is the sweep order; the first
// entry is the default.
var backendRegistry = []struct {
	kind BackendKind
	name string
	ctor func(nl *netlist.Netlist) (Backend, error)
}{
	{BackendCompiled, "compiled", func(nl *netlist.Netlist) (Backend, error) { return newCompiled(nl) }},
	{BackendInterp, "interp", func(nl *netlist.Netlist) (Backend, error) { return newInterp(nl) }},
	{BackendBitslice, "bitslice", func(nl *netlist.Netlist) (Backend, error) { return newBitslice(nl) }},
}

// String returns the parseable name of the backend kind.
func (k BackendKind) String() string {
	for _, e := range backendRegistry {
		if e.kind == k {
			return e.name
		}
	}
	return fmt.Sprintf("backend(%d)", uint8(k))
}

// BackendNames lists the registered backend names in registry order — the
// valid values for every -backend flag and the gliftd options.backend field.
func BackendNames() []string {
	names := make([]string, len(backendRegistry))
	for i, e := range backendRegistry {
		names[i] = e.name
	}
	return names
}

// ParseBackend resolves a backend name from the registry: empty selects the
// default (compiled); "interpreter" is accepted as an alias for "interp".
// Unknown names error with the full list of valid ones.
func ParseBackend(s string) (BackendKind, error) {
	if s == "" {
		return backendRegistry[0].kind, nil
	}
	if s == "interpreter" {
		s = "interp"
	}
	for _, e := range backendRegistry {
		if e.name == s {
			return e.kind, nil
		}
	}
	return 0, fmt.Errorf("sim: unknown backend %q (want one of: %s)", s, strings.Join(BackendNames(), ", "))
}

// Backends lists every backend kind in registry order, for differential
// sweeps.
func Backends() []BackendKind {
	kinds := make([]BackendKind, len(backendRegistry))
	for i, e := range backendRegistry {
		kinds[i] = e.kind
	}
	return kinds
}

// newBackend constructs the selected backend implementation.
func newBackend(nl *netlist.Netlist, kind BackendKind) (Backend, error) {
	for _, e := range backendRegistry {
		if e.kind == kind {
			return e.ctor(nl)
		}
	}
	return nil, fmt.Errorf("sim: unknown backend kind %d", kind)
}
