package sim

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// Backend is a gate-evaluation engine for one netlist instance. Circuit owns
// exactly one and drives it through the per-cycle protocol: Set primary
// inputs, Eval the combinational logic (possibly several times with forced
// nets), Clock the flip-flops, snapshot/restore DFF state.
//
// Every backend must produce bit-identical net values for identical stimulus
// — the analysis engine's reports are byte-compared across backends by the
// differential suite — and identical Clock toggle counts, which feed the
// energy model. The unexported vals method closes the interface to this
// package: the wrapper reads the dense value array directly for its
// word-level accessors.
type Backend interface {
	// InitX resets every net — including all flip-flop outputs — to
	// untainted X, except the constant nets (Algorithm 1, line 2).
	InitX()
	// Get returns the packed signal on a net (valid after Eval).
	Get(id netlist.NetID) logic.Packed
	// Set drives a net, normally a primary input.
	Set(id netlist.NetID, p logic.Packed)
	// Eval propagates values through the combinational logic. forced maps
	// net IDs to values that override whatever their driver would produce;
	// nil for a normal evaluation.
	Eval(forced map[netlist.NetID]logic.Sig)
	// Clock commits flip-flop next states and returns the number of
	// flip-flop output value transitions (taint-only changes excluded).
	Clock() uint64
	// DFFState returns a copy of the flip-flop output values.
	DFFState() []logic.Packed
	// RestoreDFFState installs previously captured flip-flop outputs. The
	// host must Eval before reading any combinational net.
	RestoreDFFState(st []logic.Packed)

	// vals exposes the backend's dense per-net value array for the
	// wrapper's bulk reads. The host must treat it as read-only.
	vals() []logic.Packed
}

// BackendKind selects a Backend implementation.
type BackendKind uint8

const (
	// BackendCompiled is the default: the netlist is lowered once into a
	// flat instruction stream and evaluated change-driven — only gates
	// whose inputs actually changed are re-evaluated.
	BackendCompiled BackendKind = iota
	// BackendInterp is the reference interpreter: a full sweep of the
	// levelized gate list through a per-gate switch on every Eval.
	BackendInterp
)

// String returns the parseable name of the backend kind.
func (k BackendKind) String() string {
	switch k {
	case BackendCompiled:
		return "compiled"
	case BackendInterp:
		return "interp"
	}
	return fmt.Sprintf("backend(%d)", uint8(k))
}

// ParseBackend resolves a backend name: "compiled" (or empty, the default)
// and "interp"/"interpreter".
func ParseBackend(s string) (BackendKind, error) {
	switch s {
	case "", "compiled":
		return BackendCompiled, nil
	case "interp", "interpreter":
		return BackendInterp, nil
	}
	return 0, fmt.Errorf("sim: unknown backend %q (want compiled or interp)", s)
}

// Backends lists every backend kind, for differential sweeps.
func Backends() []BackendKind { return []BackendKind{BackendCompiled, BackendInterp} }

// newBackend constructs the selected backend implementation.
func newBackend(nl *netlist.Netlist, kind BackendKind) (Backend, error) {
	switch kind {
	case BackendCompiled:
		return newCompiled(nl)
	case BackendInterp:
		return newInterp(nl)
	}
	return nil, fmt.Errorf("sim: unknown backend kind %d", kind)
}
