package sim

import (
	"sync"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// Instruction kinds of the compiled stream.
const (
	ckConst uint8 = iota
	ckUnary
	ckBinary
	ckMux
)

// Lookup tables of all ops concatenated into one flat array, shared by every
// compiled backend instance: per-instruction offsets into it replace the
// per-gate op switch of the interpreter.
var (
	flatOnce sync.Once
	flatTab  []logic.Packed
	flatOff  map[logic.Op]int32
)

func flatLUT() ([]logic.Packed, map[logic.Op]int32) {
	flatOnce.Do(func() {
		flatOff = make(map[logic.Op]int32)
		add := func(op logic.Op, row []logic.Packed) {
			flatOff[op] = int32(len(flatTab))
			flatTab = append(flatTab, row...)
		}
		for _, op := range []logic.Op{logic.Buf, logic.Not} {
			add(op, logic.LUT1(op))
		}
		for _, op := range []logic.Op{logic.And, logic.Or, logic.Nand, logic.Nor, logic.Xor, logic.Xnor} {
			add(op, logic.LUT2(op))
		}
		add(logic.Mux, logic.LUTMux())
	})
	return flatTab, flatOff
}

// compiled is the default evaluation backend. Construction lowers the
// netlist once into a flat struct-of-arrays instruction stream in level
// order (one instruction per gate: kind, LUT offset, input net indices,
// output net index), plus a CSR fanout adjacency from nets to the
// instructions consuming them, both derived from netlist.Levelize.
//
// Eval is change-driven: a per-level dirty worklist is seeded by the nets
// that changed since the last Eval (host Sets, Clocked flip-flop outputs,
// forced nets, and nets whose forcing was released), and only instructions
// whose inputs actually changed value are re-evaluated. Because a gate's
// consumers always sit at a strictly higher level, draining the buckets in
// level order evaluates every dirty gate exactly once, after all its dirty
// inputs settled — the fixpoint is identical to the interpreter's full
// sweep, which is what keeps analysis reports byte-identical across
// backends.
//
// InitX and RestoreDFFState invalidate incremental knowledge wholesale (the
// whole state changed); the next Eval then runs one full sweep of the
// stream and incremental evaluation resumes from there.
type compiled struct {
	nl   *netlist.Netlist
	v    []logic.Packed // current value of every net
	tmp  []logic.Packed // scratch for DFF next-state computation
	rstv []logic.Packed // per-DFF packed (untainted) reset value

	// The instruction stream, index = position in level order.
	kind   []uint8
	tab    []int32 // offset into flat; for ckConst, the packed value itself
	in0    []int32
	in1    []int32
	in2    []int32
	out    []int32
	ilevel []int32
	flat   []logic.Packed

	fanIdx    []int32 // CSR: net -> consuming instruction positions
	fan       []int32
	driverPos []int32 // net -> driving instruction position, or -1

	// Dirty-worklist state. Epoch stamps make per-Eval membership tests
	// (already queued? forced this Eval?) single array reads with no
	// clearing between calls.
	epoch      uint64
	queuedEp   []uint64 // per instruction: enqueued at this epoch
	forcedEp   []uint64 // per net: forced at this epoch
	buckets    [][]int32
	pending    []netlist.NetID // nets changed since the last Eval
	prevForced []netlist.NetID // nets forced by the previous Eval
	needFull   bool
}

func newCompiled(nl *netlist.Netlist) (*compiled, error) {
	lv, err := nl.Levelize()
	if err != nil {
		return nil, err
	}
	ng, nn := len(nl.Gates), nl.NumNets()
	flat, off := flatLUT()
	c := &compiled{
		nl:        nl,
		v:         make([]logic.Packed, nn),
		tmp:       make([]logic.Packed, len(nl.DFFs)),
		rstv:      make([]logic.Packed, len(nl.DFFs)),
		kind:      make([]uint8, ng),
		tab:       make([]int32, ng),
		in0:       make([]int32, ng),
		in1:       make([]int32, ng),
		in2:       make([]int32, ng),
		out:       make([]int32, ng),
		ilevel:    make([]int32, ng),
		flat:      flat,
		driverPos: make([]int32, nn),
		queuedEp:  make([]uint64, ng),
		forcedEp:  make([]uint64, nn),
		buckets:   make([][]int32, lv.NumLevels()),
		needFull:  true,
	}
	for i, d := range nl.DFFs {
		c.rstv[i] = logic.Pack(logic.S(d.RstVal, false))
	}
	pos := make([]int32, ng) // gate index -> instruction position
	for p, gi := range lv.Order {
		g := &nl.Gates[gi]
		pos[gi] = int32(p)
		c.out[p] = int32(g.Out)
		c.ilevel[p] = lv.GateLevel[gi]
		switch g.Op.Arity() {
		case 0:
			c.kind[p] = ckConst
			if g.Op == logic.Const1 {
				c.tab[p] = int32(logic.Pack(logic.One0))
			} else {
				c.tab[p] = int32(logic.Pack(logic.Zero0))
			}
		case 1:
			c.kind[p] = ckUnary
			c.tab[p] = off[g.Op]
			c.in0[p] = int32(g.In[0])
		case 2:
			c.kind[p] = ckBinary
			c.tab[p] = off[g.Op]
			c.in0[p] = int32(g.In[0])
			c.in1[p] = int32(g.In[1])
		default:
			c.kind[p] = ckMux
			c.tab[p] = off[logic.Mux]
			c.in0[p] = int32(g.In[0]) // select
			c.in1[p] = int32(g.In[1])
			c.in2[p] = int32(g.In[2])
		}
	}
	c.fanIdx = make([]int32, nn+1)
	copy(c.fanIdx, lv.FanoutIndex)
	c.fan = make([]int32, c.fanIdx[nn])
	for id := 0; id < nn; id++ {
		dst := c.fan[c.fanIdx[id]:c.fanIdx[id+1]]
		for i, gi := range lv.NetFanout(netlist.NetID(id)) {
			dst[i] = pos[gi]
		}
		if g := lv.DriverGate[id]; g >= 0 {
			c.driverPos[id] = pos[g]
		} else {
			c.driverPos[id] = -1
		}
	}
	return c, nil
}

func (c *compiled) vals() []logic.Packed { return c.v }

func (c *compiled) Get(id netlist.NetID) logic.Packed { return c.v[id] }

func (c *compiled) Set(id netlist.NetID, p logic.Packed) {
	if c.v[id] != p {
		c.v[id] = p
		if !c.needFull {
			c.pending = append(c.pending, id)
		}
	}
}

func (c *compiled) InitX() {
	xp := logic.Pack(logic.X0)
	for i := range c.v {
		c.v[i] = xp
	}
	c.v[c.nl.Const0()] = logic.Pack(logic.Zero0)
	c.v[c.nl.Const1()] = logic.Pack(logic.One0)
	c.pending = c.pending[:0]
	c.needFull = true
}

func (c *compiled) Eval(forced map[netlist.NetID]logic.Sig) {
	c.epoch++
	ep := c.epoch
	for id, s := range forced {
		c.forcedEp[id] = ep
		c.Set(id, logic.Pack(s))
	}
	if c.needFull {
		c.fullSweep(ep)
		c.needFull = false
		c.pending = c.pending[:0]
	} else {
		// A net forced last Eval but not this one reverts to whatever its
		// combinational driver computes (sourceless nets — inputs, DFF
		// outputs — simply hold their value, like in the interpreter).
		for _, id := range c.prevForced {
			if c.forcedEp[id] != ep {
				if dp := c.driverPos[id]; dp >= 0 {
					c.enqueue(dp, ep)
				}
			}
		}
		for _, id := range c.pending {
			c.seed(id, ep)
		}
		c.pending = c.pending[:0]
		c.drain(ep)
	}
	c.prevForced = c.prevForced[:0]
	for id := range forced {
		c.prevForced = append(c.prevForced, id)
	}
}

// enqueue marks one instruction dirty, once per epoch.
func (c *compiled) enqueue(p int32, ep uint64) {
	if c.queuedEp[p] != ep {
		c.queuedEp[p] = ep
		l := c.ilevel[p]
		c.buckets[l] = append(c.buckets[l], p)
	}
}

// seed marks every consumer of a changed net dirty.
func (c *compiled) seed(id netlist.NetID, ep uint64) {
	for _, p := range c.fan[c.fanIdx[id]:c.fanIdx[id+1]] {
		c.enqueue(p, ep)
	}
}

// drain evaluates the dirty instructions level by level. Instructions only
// ever enqueue into strictly higher levels (a gate's consumers are deeper),
// so each bucket is complete when its level is reached.
func (c *compiled) drain(ep uint64) {
	for l := range c.buckets {
		b := c.buckets[l]
		for i := 0; i < len(b); i++ {
			c.step(b[i], ep)
		}
		c.buckets[l] = b[:0]
	}
}

// step re-evaluates one dirty instruction and propagates on actual change.
func (c *compiled) step(p int32, ep uint64) {
	o := c.out[p]
	if c.forcedEp[o] == ep {
		return // the forced value wins over the driver this Eval
	}
	nv := c.evalInstr(p)
	if nv != c.v[o] {
		c.v[o] = nv
		c.seed(netlist.NetID(o), ep)
	}
}

func (c *compiled) evalInstr(p int32) logic.Packed {
	switch c.kind[p] {
	case ckUnary:
		return c.flat[c.tab[p]+int32(c.v[c.in0[p]])]
	case ckBinary:
		return c.flat[c.tab[p]+int32(c.v[c.in0[p]])*logic.NumPacked+int32(c.v[c.in1[p]])]
	case ckMux:
		return c.flat[c.tab[p]+(int32(c.v[c.in0[p]])*logic.NumPacked+int32(c.v[c.in1[p]]))*logic.NumPacked+int32(c.v[c.in2[p]])]
	default:
		return logic.Packed(c.tab[p])
	}
}

// fullSweep evaluates the whole stream in level order, used for the first
// Eval and after InitX/RestoreDFFState.
func (c *compiled) fullSweep(ep uint64) {
	for p := range c.kind {
		o := c.out[p]
		if c.forcedEp[o] == ep {
			continue
		}
		c.v[o] = c.evalInstr(int32(p))
	}
}

func (c *compiled) Clock() uint64 {
	dffs := c.nl.DFFs
	v := c.v
	for i := range dffs {
		d := &dffs[i]
		held := logic.EvalMux(v[d.En], v[d.Q], v[d.D])
		c.tmp[i] = logic.EvalMux(v[d.Rst], held, c.rstv[i])
	}
	var toggles uint64
	for i := range dffs {
		q := dffs[i].Q
		old := v[q]
		nv := c.tmp[i]
		if (old^nv)&3 != 0 {
			toggles++
		}
		if old != nv {
			v[q] = nv
			if !c.needFull {
				c.pending = append(c.pending, q)
			}
		}
	}
	return toggles
}

func (c *compiled) DFFState() []logic.Packed {
	out := make([]logic.Packed, len(c.nl.DFFs))
	for i, d := range c.nl.DFFs {
		out[i] = c.v[d.Q]
	}
	return out
}

func (c *compiled) RestoreDFFState(st []logic.Packed) {
	for i, d := range c.nl.DFFs {
		c.v[d.Q] = st[i]
	}
	c.pending = c.pending[:0]
	c.needFull = true
}
