package sim

import (
	"math/rand"
	"testing"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// randBackendNetlist builds a random well-formed sequential netlist: a few
// inputs, a few flip-flops, and nGates gates drawing inputs from everything
// driven so far (including constants, to exercise constant-input fanout).
func randBackendNetlist(rnd *rand.Rand, nGates int) (*netlist.Netlist, []netlist.NetID) {
	n := netlist.New()
	driven := []netlist.NetID{n.Const0(), n.Const1()}
	var inputs []netlist.NetID
	for i := 0; i < 4; i++ {
		id := n.AddInput("in" + string(rune('a'+i)))
		driven = append(driven, id)
		inputs = append(inputs, id)
	}
	nDFF := 3
	qs := make([]netlist.NetID, nDFF)
	for i := range qs {
		qs[i] = n.NewNet("")
		driven = append(driven, qs[i])
	}
	ops := []logic.Op{logic.Buf, logic.Not, logic.And, logic.Or, logic.Nand, logic.Nor, logic.Xor, logic.Xnor, logic.Mux, logic.Const0, logic.Const1}
	pick := func() netlist.NetID { return driven[rnd.Intn(len(driven))] }
	for g := 0; g < nGates; g++ {
		op := ops[rnd.Intn(len(ops))]
		out := n.NewNet("")
		in := make([]netlist.NetID, op.Arity())
		for i := range in {
			in[i] = pick()
		}
		n.AddGate(op, out, in...)
		driven = append(driven, out)
	}
	for i := range qs {
		n.AddDFF(qs[i], pick(), pick(), pick(), logic.V(rnd.Intn(2)))
	}
	if err := n.Validate(); err != nil {
		panic(err)
	}
	return n, inputs
}

var backendSigs = []logic.Sig{logic.Zero0, logic.One0, logic.X0, logic.Zero1, logic.One1, logic.XT}

// compareAllNets fails the test on the first net where the two circuits
// disagree.
func compareAllNets(t *testing.T, n *netlist.Netlist, ref, got *Circuit, step string) {
	t.Helper()
	for id := 0; id < n.NumNets(); id++ {
		r := ref.Get(netlist.NetID(id))
		g := got.Get(netlist.NetID(id))
		if r != g {
			t.Fatalf("%s: net %q: ref=%s got=%s", step, n.Name(netlist.NetID(id)), r, g)
		}
	}
}

// TestBackendEquivalence drives the reference interpreter and every other
// registered backend through identical randomized stimulus — input changes,
// evaluations, forced evaluations (including repeated and released
// forcings), clocks, snapshot restores and re-inits — and demands
// bit-identical values on every net plus identical toggle counts after
// every operation.
func TestBackendEquivalence(t *testing.T) {
	for _, kind := range Backends() {
		if kind == BackendInterp {
			continue
		}
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			for seed := int64(0); seed < 40; seed++ {
				rnd := rand.New(rand.NewSource(seed))
				n, inputs := randBackendNetlist(rnd, 60)
				ref, err := NewCircuitBackend(n, BackendInterp)
				if err != nil {
					t.Fatal(err)
				}
				got, err := NewCircuitBackend(n, kind)
				if err != nil {
					t.Fatal(err)
				}
				// Forcing candidates: any gate-driven net or DFF output.
				var forceable []netlist.NetID
				lv, _ := n.Levelize()
				for id := 0; id < n.NumNets(); id++ {
					if lv.DriverGate[id] >= 0 || n.IsDFFOutput(netlist.NetID(id)) {
						forceable = append(forceable, netlist.NetID(id))
					}
				}
				var snaps [][]logic.Packed
				for step := 0; step < 120; step++ {
					switch op := rnd.Intn(10); {
					case op < 4: // drive some inputs, then eval
						for _, in := range inputs {
							if rnd.Intn(2) == 0 {
								s := backendSigs[rnd.Intn(len(backendSigs))]
								ref.SetInput(in, s)
								got.SetInput(in, s)
							}
						}
						ref.Eval(nil)
						got.Eval(nil)
					case op < 6: // forced evaluation
						forced := map[netlist.NetID]logic.Sig{}
						for k := 0; k < 1+rnd.Intn(3); k++ {
							forced[forceable[rnd.Intn(len(forceable))]] = backendSigs[rnd.Intn(len(backendSigs))]
						}
						ref.Eval(forced)
						got.Eval(forced)
					case op < 8: // clock, then settle
						ref.Clock()
						got.Clock()
						if ref.Toggles != got.Toggles {
							t.Fatalf("seed %d step %d: toggles ref=%d got=%d", seed, step, ref.Toggles, got.Toggles)
						}
						ref.Eval(nil)
						got.Eval(nil)
					case op < 9: // snapshot or restore
						if len(snaps) == 0 || rnd.Intn(2) == 0 {
							snaps = append(snaps, ref.DFFState())
						} else {
							st := snaps[rnd.Intn(len(snaps))]
							ref.RestoreDFFState(st)
							got.RestoreDFFState(st)
							ref.Eval(nil)
							got.Eval(nil)
						}
					default: // re-init
						ref.InitX()
						got.InitX()
						ref.Eval(nil)
						got.Eval(nil)
					}
					compareAllNets(t, n, ref, got, "seed/step")
				}
			}
		})
	}
}

// TestBackendReleasedForce pins the subtlest incremental case: a net forced
// in one Eval must revert to its driver's value on the next unforced Eval,
// and consumers must observe the reversion.
func TestBackendReleasedForce(t *testing.T) {
	n := netlist.New()
	a := n.AddInput("a")
	b := n.AddInput("b")
	ab := n.NewNet("ab")
	o := n.NewNet("o")
	n.AddGate(logic.And, ab, a, b)
	n.AddGate(logic.Not, o, ab)
	for _, kind := range Backends() {
		c, err := NewCircuitBackend(n, kind)
		if err != nil {
			t.Fatal(err)
		}
		c.SetInput(a, logic.One0)
		c.SetInput(b, logic.One0)
		c.Eval(nil)
		if c.Get(o) != logic.Zero0 {
			t.Fatalf("%s: o = %s, want 0", kind, c.Get(o))
		}
		c.Eval(map[netlist.NetID]logic.Sig{ab: logic.Zero1})
		if c.Get(ab) != logic.Zero1 || c.Get(o) != logic.One1 {
			t.Fatalf("%s: forced: ab=%s o=%s", kind, c.Get(ab), c.Get(o))
		}
		// Released: ab must recompute from (a,b)=(1,1) even though neither
		// input changed since the forced Eval.
		c.Eval(nil)
		if c.Get(ab) != logic.One0 || c.Get(o) != logic.Zero0 {
			t.Fatalf("%s: released: ab=%s o=%s", kind, c.Get(ab), c.Get(o))
		}
	}
}

// TestParseBackend covers the name round-trip used by the CLIs and gliftd.
func TestParseBackend(t *testing.T) {
	for _, k := range Backends() {
		got, err := ParseBackend(k.String())
		if err != nil || got != k {
			t.Fatalf("ParseBackend(%q) = %v, %v", k.String(), got, err)
		}
	}
	if k, err := ParseBackend(""); err != nil || k != BackendCompiled {
		t.Fatalf("ParseBackend(\"\") = %v, %v; want compiled default", k, err)
	}
	if k, err := ParseBackend("interpreter"); err != nil || k != BackendInterp {
		t.Fatalf("ParseBackend(\"interpreter\") = %v, %v", k, err)
	}
	if _, err := ParseBackend("jit"); err == nil {
		t.Fatal("ParseBackend(\"jit\") should fail")
	}
}
