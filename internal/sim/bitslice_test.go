package sim

import (
	"math/bits"
	"math/rand"
	"testing"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// bitsliceSigs are the 6 valid signals, indexable for combo enumeration.
var bitsliceSigs = []logic.Sig{logic.Zero0, logic.One0, logic.X0, logic.Zero1, logic.One1, logic.XT}

// TestBitslicePlaneFormulas proves the word-parallel plane formulas agree
// with the brute-force GLIFT ground truth (logic.Eval) for every op over
// every combination of valid input signals, with a distinct combination
// packed into every lane of the same evaluation.
func TestBitslicePlaneFormulas(t *testing.T) {
	ops := []logic.Op{logic.Const0, logic.Const1, logic.Buf, logic.Not,
		logic.And, logic.Or, logic.Nand, logic.Nor, logic.Xor, logic.Xnor, logic.Mux}
	for _, op := range ops {
		op := op
		t.Run(op.String(), func(t *testing.T) {
			n := netlist.New()
			arity := op.Arity()
			ins := make([]netlist.NetID, arity)
			for i := range ins {
				ins[i] = n.AddInput("in" + string(rune('a'+i)))
			}
			out := n.NewNet("out")
			n.AddGate(op, out, ins...)
			if err := n.Validate(); err != nil {
				t.Fatal(err)
			}
			b, err := NewBatchBackend(n, BatchLanes)
			if err != nil {
				t.Fatal(err)
			}
			total := 1
			for i := 0; i < arity; i++ {
				total *= len(bitsliceSigs)
			}
			for base := 0; base < total; base += BatchLanes {
				chunk := total - base
				if chunk > BatchLanes {
					chunk = BatchLanes
				}
				for lane := 0; lane < chunk; lane++ {
					combo := base + lane
					for i := range ins {
						b.SetLane(lane, ins[i], bitsliceSigs[combo%len(bitsliceSigs)])
						combo /= len(bitsliceSigs)
					}
				}
				b.Eval()
				for lane := 0; lane < chunk; lane++ {
					combo := base + lane
					args := make([]logic.Sig, arity)
					for i := range args {
						args[i] = bitsliceSigs[combo%len(bitsliceSigs)]
						combo /= len(bitsliceSigs)
					}
					want := logic.Eval(op, args...)
					got := b.GetLane(lane, out)
					if got != want {
						t.Fatalf("%s%v lane %d: got %s, want %s", op, args, lane, got, want)
					}
				}
			}
		})
	}
}

// TestBatchLaneEquivalence drives a BatchBackend at every lane count 1–64
// against one reference interpreter circuit per lane, through randomized
// per-lane stimulus: independent input drives, per-lane forced evaluations,
// clocks with per-lane toggle accounting, cross-lane DFF snapshot
// save/restore, re-inits, and ragged retirement (lanes dropping out at
// different steps while the rest must stay bit-identical).
func TestBatchLaneEquivalence(t *testing.T) {
	for lanes := 1; lanes <= BatchLanes; lanes++ {
		rnd := rand.New(rand.NewSource(int64(lanes) * 7919))
		n, inputs := randBackendNetlist(rnd, 40)
		batch, err := NewBatchBackend(n, lanes)
		if err != nil {
			t.Fatal(err)
		}
		refs := make([]*Circuit, lanes)
		for i := range refs {
			if refs[i], err = NewCircuitBackend(n, BackendInterp); err != nil {
				t.Fatal(err)
			}
		}
		var forceable []netlist.NetID
		lv, _ := n.Levelize()
		for id := 0; id < n.NumNets(); id++ {
			if lv.DriverGate[id] >= 0 || n.IsDFFOutput(netlist.NetID(id)) {
				forceable = append(forceable, netlist.NetID(id))
			}
		}
		alive := batch.LaneMask()
		forAlive := func(f func(lane int)) {
			for m := alive; m != 0; m &= m - 1 {
				f(bits.TrailingZeros64(m))
			}
		}
		compare := func(step int) {
			forAlive(func(lane int) {
				for id := 0; id < n.NumNets(); id++ {
					want := refs[lane].Get(netlist.NetID(id))
					got := batch.GetLane(lane, netlist.NetID(id))
					if got != want {
						t.Fatalf("lanes=%d step %d lane %d net %q: batch=%s ref=%s",
							lanes, step, lane, n.Name(netlist.NetID(id)), got, want)
					}
				}
			})
		}
		var snaps [][]logic.Packed
		for step := 0; step < 80; step++ {
			switch op := rnd.Intn(12); {
			case op < 4: // independent per-lane input drives, then eval
				forAlive(func(lane int) {
					for _, in := range inputs {
						if rnd.Intn(2) == 0 {
							s := bitsliceSigs[rnd.Intn(len(bitsliceSigs))]
							refs[lane].SetInput(in, s)
							batch.SetLane(lane, in, s)
						}
					}
				})
				forAlive(func(lane int) { refs[lane].Eval(nil) })
				batch.Eval()
			case op < 6: // per-lane forced evaluation
				forAlive(func(lane int) {
					forced := map[netlist.NetID]logic.Sig{}
					for k := 0; k < rnd.Intn(3); k++ {
						id := forceable[rnd.Intn(len(forceable))]
						s := bitsliceSigs[rnd.Intn(len(bitsliceSigs))]
						forced[id] = s
						batch.Force(lane, id, s)
					}
					refs[lane].Eval(forced)
				})
				batch.Eval()
			case op < 8: // clock with per-lane toggle accounting, then settle
				batch.Clock()
				forAlive(func(lane int) {
					refs[lane].Clock()
					if refs[lane].Toggles != batch.LaneToggles(lane) {
						t.Fatalf("lanes=%d step %d lane %d: toggles batch=%d ref=%d",
							lanes, step, lane, batch.LaneToggles(lane), refs[lane].Toggles)
					}
					refs[lane].Eval(nil)
				})
				batch.Eval()
			case op < 9: // cross-lane snapshot or restore
				if len(snaps) == 0 || rnd.Intn(2) == 0 {
					forAlive(func(lane int) {
						snaps = append(snaps, batch.LaneDFFState(lane))
					})
				} else if alive != 0 {
					st := snaps[rnd.Intn(len(snaps))]
					forAlive(func(lane int) {
						if rnd.Intn(2) == 0 {
							return
						}
						refs[lane].RestoreDFFState(st)
						batch.RestoreLaneDFFState(lane, st)
					})
					forAlive(func(lane int) { refs[lane].Eval(nil) })
					batch.Eval()
				}
			case op < 11: // ragged retirement: one lane drops out for good
				if bits.OnesCount64(alive) > 1 {
					set := []int{}
					forAlive(func(lane int) { set = append(set, lane) })
					alive &^= 1 << set[rnd.Intn(len(set))]
					batch.SetActive(alive)
				}
			default: // re-init every lane
				batch.InitX()
				forAlive(func(lane int) {
					refs[lane].InitX()
					refs[lane].Toggles = 0
					refs[lane].Eval(nil)
				})
				batch.Eval()
			}
			compare(step)
		}
	}
}

// TestBatchPartialForceRevert pins the per-lane analogue of the released
// force: a lane forced in one Eval and not the next must revert to its
// driver, even when the same net stays force-overlaid for a different lane
// and no gate input changed in between.
func TestBatchPartialForceRevert(t *testing.T) {
	n := netlist.New()
	a := n.AddInput("a")
	b := n.AddInput("b")
	ab := n.NewNet("ab")
	o := n.NewNet("o")
	n.AddGate(logic.And, ab, a, b)
	n.AddGate(logic.Not, o, ab)
	bb, err := NewBatchBackend(n, 4)
	if err != nil {
		t.Fatal(err)
	}
	bb.SetAll(a, logic.One0)
	bb.SetAll(b, logic.One0)
	bb.Eval()
	for lane := 0; lane < 4; lane++ {
		if got := bb.GetLane(lane, o); got != logic.Zero0 {
			t.Fatalf("lane %d: o=%s, want 0", lane, got)
		}
	}
	// Force lanes 1 and 2, differently.
	bb.Force(1, ab, logic.Zero1)
	bb.Force(2, ab, logic.XT)
	bb.Eval()
	for lane, want := range []logic.Sig{logic.One0, logic.Zero1, logic.XT, logic.One0} {
		if got := bb.GetLane(lane, ab); got != want {
			t.Fatalf("forced: lane %d ab=%s, want %s", lane, got, want)
		}
	}
	if got := bb.GetLane(1, o); got != logic.One1 {
		t.Fatalf("forced: lane 1 o=%s, want 1*", got)
	}
	// Next Eval keeps only lane 2 forced: lane 1 must revert to the driver.
	bb.Force(2, ab, logic.Zero1)
	bb.Eval()
	for lane, want := range []logic.Sig{logic.One0, logic.One0, logic.Zero1, logic.One0} {
		if got := bb.GetLane(lane, ab); got != want {
			t.Fatalf("partial release: lane %d ab=%s, want %s", lane, got, want)
		}
	}
	// Fully released: every lane reverts.
	bb.Eval()
	for lane := 0; lane < 4; lane++ {
		if got := bb.GetLane(lane, ab); got != logic.One0 {
			t.Fatalf("released: lane %d ab=%s, want 1", lane, got)
		}
		if got := bb.GetLane(lane, o); got != logic.Zero0 {
			t.Fatalf("released: lane %d o=%s, want 0", lane, got)
		}
	}
}

// TestBatchLaneWords covers the word-level lane accessors used by the
// batched machine harness.
func TestBatchLaneWords(t *testing.T) {
	n := netlist.New()
	nets := make([]netlist.NetID, 16)
	for i := range nets {
		nets[i] = n.AddInput("w" + string(rune('a'+i)))
	}
	bb, err := NewBatchBackend(n, 8)
	if err != nil {
		t.Fatal(err)
	}
	rnd := rand.New(rand.NewSource(1))
	words := make([]Word, 8)
	for lane := range words {
		words[lane] = Word{Val: uint16(rnd.Uint32()), XM: uint16(rnd.Uint32()), TT: uint16(rnd.Uint32())}
		words[lane].Val &^= words[lane].XM // Sig() reports X bits with Val clear
		bb.SetLaneWord(lane, nets, words[lane])
	}
	bb.Eval()
	for lane := range words {
		if got := bb.GetLaneWord(lane, nets); got != words[lane] {
			t.Fatalf("lane %d: got %+v, want %+v", lane, got, words[lane])
		}
	}
}
