package sim

import (
	"repro/internal/logic"
	"repro/internal/netlist"
)

// BatchBackend evaluates one netlist across up to 64 independent lanes in
// lockstep: lane i of every three-plane word (see bitslice.go) is its own
// analysis context with its own inputs, forced-net overlay, flip-flop state
// and toggle counter. One Eval/Clock advances every lane at once, which is
// what the batched fault campaign (internal/fault) and lane-packed
// speculation (internal/glift) build on.
//
// Lanes that finish early are retired via SetActive: retired lanes keep
// evaluating (their words ride along for free) but stop accruing toggle
// counts, and the host simply stops reading them. The per-lane protocol is
// the scalar Backend protocol per lane: stage Force calls, Eval, read nets,
// Clock.
type BatchBackend struct {
	c *bitslice
}

// NewBatchBackend constructs a batch evaluator with the given lane count
// (1..BatchLanes). All lanes start at untainted X (InitX applied).
func NewBatchBackend(nl *netlist.Netlist, lanes int) (*BatchBackend, error) {
	c, err := newBitsliceCore(nl, lanes, false)
	if err != nil {
		return nil, err
	}
	c.InitX()
	return &BatchBackend{c: c}, nil
}

// Lanes returns the configured lane count.
func (b *BatchBackend) Lanes() int { return b.c.lanes }

// LaneMask returns the mask with every configured lane set.
func (b *BatchBackend) LaneMask() uint64 { return b.c.laneMask }

// Active returns the current active-lane mask.
func (b *BatchBackend) Active() uint64 { return b.c.active & b.c.laneMask }

// SetActive installs the active-lane retirement mask: only active lanes
// accrue toggle counts from Clock.
func (b *BatchBackend) SetActive(mask uint64) { b.c.active = mask & b.c.laneMask }

// InitX resets every lane of every net to untainted X (constants excepted)
// and zeroes the per-lane toggle counters.
func (b *BatchBackend) InitX() {
	b.c.InitX()
	for i := range b.c.toggles {
		b.c.toggles[i] = 0
	}
}

// GetLane reads one lane of a net (valid after Eval).
func (b *BatchBackend) GetLane(lane int, id netlist.NetID) logic.Sig {
	return b.c.laneSig(id, lane)
}

// SetLane drives one lane of a net, leaving the other lanes untouched.
func (b *BatchBackend) SetLane(lane int, id netlist.NetID, s logic.Sig) {
	b.c.setLane(id, lane, s)
}

// SetAll drives every lane of a net to the same signal.
func (b *BatchBackend) SetAll(id netlist.NetID, s logic.Sig) {
	l, h, t := sigPlanes(s)
	b.c.setPlanes(id, l, h, t)
}

// GetLaneWord assembles a word from one lane of the given nets, LSB first.
func (b *BatchBackend) GetLaneWord(lane int, nets []netlist.NetID) Word {
	var w Word
	for i, id := range nets {
		s := b.c.laneSig(id, lane)
		bit := uint16(1) << i
		switch s.V {
		case logic.One:
			w.Val |= bit
		case logic.X:
			w.XM |= bit
		}
		if s.T {
			w.TT |= bit
		}
	}
	return w
}

// SetLaneWord drives one lane of the given nets from a word, LSB first.
func (b *BatchBackend) SetLaneWord(lane int, nets []netlist.NetID, w Word) {
	for i, id := range nets {
		b.c.setLane(id, lane, w.Sig(i))
	}
}

// Force stages a forced net for one lane of the next Eval. Forces on the
// same net across lanes coalesce into one overlay entry; staged forces are
// consumed (and cleared) by the next Eval call.
func (b *BatchBackend) Force(lane int, id netlist.NetID, s logic.Sig) {
	c := b.c
	ix, ok := c.forceIx[id]
	if !ok {
		ix = int32(len(c.forces))
		c.forces = append(c.forces, laneForce{id: id})
		c.forceIx[id] = ix
	}
	f := &c.forces[ix]
	bit := uint64(1) << lane
	f.mask |= bit
	// Re-forcing the same lane replaces the earlier value (map semantics).
	f.l &^= bit
	f.h &^= bit
	f.t &^= bit
	switch s.V {
	case logic.Zero:
		f.l |= bit
	case logic.One:
		f.h |= bit
	default:
		f.l |= bit
		f.h |= bit
	}
	if s.T {
		f.t |= bit
	}
}

// Eval propagates values through the combinational logic of every lane,
// applying (then clearing) the staged Force overlay.
func (b *BatchBackend) Eval() {
	c := b.c
	c.evalForces(c.forces)
	for i := range c.forces {
		delete(c.forceIx, c.forces[i].id)
	}
	c.forces = c.forces[:0]
}

// Clock commits flip-flop next states on every lane; active lanes accrue
// per-lane toggle counts (LaneToggles).
func (b *BatchBackend) Clock() { b.c.clockPlanes() }

// LaneToggles returns the accumulated flip-flop value transitions of one
// lane (counted only while the lane was active).
func (b *BatchBackend) LaneToggles(lane int) uint64 { return b.c.toggles[lane] }

// LaneDFFState captures one lane's flip-flop outputs.
func (b *BatchBackend) LaneDFFState(lane int) []logic.Packed {
	c := b.c
	out := make([]logic.Packed, len(c.nl.DFFs))
	for i, d := range c.nl.DFFs {
		out[i] = logic.Pack(c.laneSig(d.Q, lane))
	}
	return out
}

// RestoreLaneDFFState installs previously captured flip-flop outputs into
// one lane. The host must Eval before reading any combinational net; the
// next Eval runs a full sweep.
func (b *BatchBackend) RestoreLaneDFFState(lane int, st []logic.Packed) {
	c := b.c
	c.needFull = true
	c.pending = c.pending[:0]
	for i, d := range c.nl.DFFs {
		c.setLane(d.Q, lane, logic.Unpack(st[i]))
	}
}
