// Package energy provides the activity-based energy model used to evaluate
// the runtime cost of the software protections (the paper reports a 15%
// average energy overhead for the analysis-guided modifications). The model
// substitutes for the paper's placed-and-routed TSMC 65 nm power numbers:
// relative energy between two binaries on the same netlist is dominated by
// cycle count (static/clock power) and switching activity (dynamic power),
// both of which the gate-level simulator measures directly.
package energy

// Model converts cycles and flip-flop toggle activity into energy.
type Model struct {
	// StaticPJPerCycle is leakage plus clock-tree energy per cycle (pJ).
	StaticPJPerCycle float64
	// DynamicPJPerToggle is switching energy attributed per flip-flop
	// output transition, amortizing the combinational cone it drives (pJ).
	DynamicPJPerToggle float64
}

// Default is calibrated to an MSP430-class core at 1 V / 100 MHz: roughly
// half static, half dynamic at typical activity (around 40 toggles/cycle).
var Default = Model{StaticPJPerCycle: 20, DynamicPJPerToggle: 0.5}

// Energy returns picojoules for a run.
func (m Model) Energy(cycles, toggles uint64) float64 {
	return m.StaticPJPerCycle*float64(cycles) + m.DynamicPJPerToggle*float64(toggles)
}

// OverheadPercent compares a protected run against a baseline.
func (m Model) OverheadPercent(baseCycles, baseToggles, protCycles, protToggles uint64) float64 {
	base := m.Energy(baseCycles, baseToggles)
	if base == 0 {
		return 0
	}
	return 100 * (m.Energy(protCycles, protToggles) - base) / base
}
