package energy

import "testing"

func TestEnergyLinear(t *testing.T) {
	m := Model{StaticPJPerCycle: 10, DynamicPJPerToggle: 2}
	if got := m.Energy(100, 50); got != 1100 {
		t.Fatalf("energy = %v", got)
	}
	if got := m.Energy(0, 0); got != 0 {
		t.Fatalf("zero energy = %v", got)
	}
}

func TestOverheadPercent(t *testing.T) {
	m := Model{StaticPJPerCycle: 10, DynamicPJPerToggle: 0}
	if got := m.OverheadPercent(1000, 0, 1150, 0); got != 15 {
		t.Fatalf("overhead = %v", got)
	}
	if got := m.OverheadPercent(0, 0, 100, 100); got != 0 {
		t.Fatal("zero base should yield 0")
	}
	// Idle-heavy protected runs (more cycles, fewer toggles per cycle) cost
	// less than pure cycle scaling.
	full := Model{StaticPJPerCycle: 10, DynamicPJPerToggle: 1}
	cycleOnly := full.OverheadPercent(1000, 0, 1500, 0)
	withIdle := full.OverheadPercent(1000, 40000, 1500, 41000)
	if withIdle >= cycleOnly {
		t.Fatalf("idle-aware overhead %v should be below cycle-only %v", withIdle, cycleOnly)
	}
}

func TestDefaultModelPlausible(t *testing.T) {
	// ~40 toggles/cycle at the default coefficients puts dynamic and static
	// energy in the same order of magnitude.
	e := Default.Energy(1000, 40_000)
	static := Default.StaticPJPerCycle * 1000
	if e < static || e > 3*static {
		t.Fatalf("default calibration off: total %v vs static %v", e, static)
	}
}
