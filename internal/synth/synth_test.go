package synth

import (
	"math/rand"
	"testing"

	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// harness builds a circuit and returns an evaluator.
type harness struct {
	t  *testing.T
	nl *netlist.Netlist
	c  *sim.Circuit
}

func newHarness(t *testing.T, build func(b *Builder)) *harness {
	t.Helper()
	nl := netlist.New()
	b := NewBuilder(nl)
	build(b)
	if err := nl.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	c, err := sim.NewCircuit(nl)
	if err != nil {
		t.Fatal(err)
	}
	return &harness{t: t, nl: nl, c: c}
}

func (h *harness) set(w Word, v uint64, taint bool) { h.c.SetWord([]netlist.NetID(w), v, taint) }

func (h *harness) get(w Word) (uint64, bool, bool) { return h.c.GetWord([]netlist.NetID(w)) }

func TestAdderExhaustive8(t *testing.T) {
	var a, c Word
	var sum Word
	var cout netlist.NetID
	h := newHarness(t, func(b *Builder) {
		a = b.InputWord("a", 8)
		c = b.InputWord("b", 8)
		cin := b.N.AddInput("cin")
		sum, cout, _ = b.Add(a, c, cin)
		b.OutputWord("sum", sum)
		b.N.AddOutput("cout", cout)
	})
	h.c.SetInput(h.nl.MustNet("cin"), logic.Zero0)
	for x := 0; x < 256; x += 7 {
		for y := 0; y < 256; y += 11 {
			h.set(a, uint64(x), false)
			h.set(c, uint64(y), false)
			h.c.Eval(nil)
			got, known, tainted := h.get(sum)
			if !known || tainted {
				t.Fatalf("add(%d,%d) not concrete/clean", x, y)
			}
			if got != uint64((x+y)&0xff) {
				t.Fatalf("add(%d,%d) = %d", x, y, got)
			}
			co := h.c.Get(cout)
			if co.V != logic.FromBool(x+y > 255) {
				t.Fatalf("cout(%d,%d) = %s", x, y, co)
			}
		}
	}
}

func TestIncAndAddConst(t *testing.T) {
	var a, inc, plus5 Word
	h := newHarness(t, func(b *Builder) {
		a = b.InputWord("a", 16)
		inc = b.Inc(a)
		plus5 = b.AddConst(a, 5)
	})
	for _, x := range []uint64{0, 1, 0xfffe, 0xffff, 1234} {
		h.set(a, x, false)
		h.c.Eval(nil)
		if got, _, _ := h.get(inc); got != (x+1)&0xffff {
			t.Fatalf("inc(%d) = %d", x, got)
		}
		if got, _, _ := h.get(plus5); got != (x+5)&0xffff {
			t.Fatalf("%d+5 = %d", x, got)
		}
	}
}

func TestEqConstAndEqW(t *testing.T) {
	var a, c Word
	var eqc, eqw netlist.NetID
	h := newHarness(t, func(b *Builder) {
		a = b.InputWord("a", 12)
		c = b.InputWord("b", 12)
		eqc = b.EqConst(a, 0x120)
		eqw = b.EqW(a, c)
	})
	h.set(a, 0x120, false)
	h.set(c, 0x120, false)
	h.c.Eval(nil)
	if h.c.Get(eqc).V != logic.One || h.c.Get(eqw).V != logic.One {
		t.Fatal("equality should hold")
	}
	h.set(c, 0x121, false)
	h.c.Eval(nil)
	if h.c.Get(eqw).V != logic.Zero {
		t.Fatal("inequality should be 0")
	}
	h.set(a, 0x0, false)
	h.c.Eval(nil)
	if h.c.Get(eqc).V != logic.Zero {
		t.Fatal("eqconst should be 0")
	}
}

// The GLIFT masking property that underlies the paper's software masking:
// if an address's upper bits are untainted and differ concretely from a
// compare constant, the comparator output is an *untainted* 0 even when the
// lower bits are tainted X.
func TestEqConstTaintMasking(t *testing.T) {
	var a Word
	var eq netlist.NetID
	h := newHarness(t, func(b *Builder) {
		a = b.InputWord("a", 16)
		eq = b.EqConst(a, 0x0120) // the WDTCTL address
	})
	// Address = 0x04xx with tainted unknown low bits: cannot be 0x0120.
	h.set(a, 0x0400, false)
	for i := 0; i < 10; i++ {
		h.c.SetInput(a[i], logic.XT)
	}
	h.c.Eval(nil)
	if got := h.c.Get(eq); got != logic.Zero0 {
		t.Fatalf("masked compare = %s, want untainted 0", got)
	}
	// Fully tainted address: compare result must be tainted.
	h.set(a, 0, true)
	h.c.Eval(nil)
	if got := h.c.Get(eq); !got.T {
		t.Fatalf("unmasked compare = %s, want tainted", got)
	}
}

func TestMuxTreeSelects(t *testing.T) {
	var sel Word
	var out Word
	vals := []uint64{0xa, 0xb, 0xc, 0xd, 0x1, 0x2, 0x3, 0x4}
	h := newHarness(t, func(b *Builder) {
		sel = b.InputWord("sel", 3)
		opts := make([]Word, 8)
		for i, v := range vals {
			opts[i] = b.Const(4, v)
		}
		out = b.MuxTree(sel, opts)
	})
	for i := uint64(0); i < 8; i++ {
		h.set(sel, i, false)
		h.c.Eval(nil)
		if got, _, _ := h.get(out); got != vals[i] {
			t.Fatalf("mux[%d] = %#x, want %#x", i, got, vals[i])
		}
	}
}

func TestDecodeOneHot(t *testing.T) {
	var sel Word
	var outs []netlist.NetID
	h := newHarness(t, func(b *Builder) {
		sel = b.InputWord("sel", 4)
		outs = b.Decode(sel)
	})
	for i := uint64(0); i < 16; i++ {
		h.set(sel, i, false)
		h.c.Eval(nil)
		for j, o := range outs {
			want := logic.FromBool(uint64(j) == i)
			if h.c.Get(o).V != want {
				t.Fatalf("decode(%d)[%d] = %s", i, j, h.c.Get(o))
			}
		}
	}
}

func TestRegisterResetLoadHold(t *testing.T) {
	var d, q Word
	var rst, en netlist.NetID
	h := newHarness(t, func(b *Builder) {
		d = b.InputWord("d", 8)
		rst = b.N.AddInput("rst")
		en = b.N.AddInput("en")
		q = b.Register("q", d, rst, en, 0x5a)
	})
	step := func(dv uint64, r, e bool) {
		h.set(d, dv, false)
		h.c.SetInput(rst, logic.S(logic.FromBool(r), false))
		h.c.SetInput(en, logic.S(logic.FromBool(e), false))
		h.c.Eval(nil)
		h.c.Clock()
		h.c.Eval(nil)
	}
	step(0, true, false) // reset
	if got, _, _ := h.get(q); got != 0x5a {
		t.Fatalf("after reset q = %#x", got)
	}
	step(0x33, false, true) // load
	if got, _, _ := h.get(q); got != 0x33 {
		t.Fatalf("after load q = %#x", got)
	}
	step(0x44, false, false) // hold
	if got, _, _ := h.get(q); got != 0x33 {
		t.Fatalf("after hold q = %#x", got)
	}
}

func TestRegisterTaintedResetKeepsTaint(t *testing.T) {
	// Gate-level reproduction of the Figure 7 property at register level.
	var d, q Word
	var rst netlist.NetID
	h := newHarness(t, func(b *Builder) {
		d = b.InputWord("d", 4)
		rst = b.N.AddInput("rst")
		q = b.Register("q", d, rst, b.High(), 0)
	})
	// Load tainted data.
	h.set(d, 0xf, true)
	h.c.SetInput(rst, logic.Zero0)
	h.c.Eval(nil)
	h.c.Clock()
	h.c.Eval(nil)
	if _, _, tainted := h.get(q); !tainted {
		t.Fatal("register should be tainted after tainted load")
	}
	// Tainted reset: value clears, taint stays.
	h.c.SetInput(rst, logic.One1)
	h.c.Eval(nil)
	h.c.Clock()
	h.c.Eval(nil)
	if v, known, tainted := h.get(q); v != 0 || !known || !tainted {
		t.Fatalf("tainted reset: q=%d known=%v tainted=%v, want 0/true/true", v, known, tainted)
	}
	// Untainted reset: everything clean.
	h.c.SetInput(rst, logic.One0)
	h.c.Eval(nil)
	h.c.Clock()
	h.c.Eval(nil)
	if v, known, tainted := h.get(q); v != 0 || !known || tainted {
		t.Fatalf("untainted reset: q=%d known=%v tainted=%v, want 0/true/false", v, known, tainted)
	}
}

func TestShiftWiring(t *testing.T) {
	var a Word
	var l, r Word
	h := newHarness(t, func(b *Builder) {
		a = b.InputWord("a", 8)
		l = ShiftLeft1(a, b.Low())
		r = ShiftRight1(a, b.High())
	})
	h.set(a, 0b10110101, false)
	h.c.Eval(nil)
	if got, _, _ := h.get(l); got != 0b01101010 {
		t.Fatalf("shl = %#b", got)
	}
	if got, _, _ := h.get(r); got != 0b11011010 {
		t.Fatalf("shr = %#b", got)
	}
}

func TestExtendSliceCat(t *testing.T) {
	var a Word
	var ze, se Word
	h := newHarness(t, func(b *Builder) {
		a = b.InputWord("a", 4)
		ze = b.ZeroExtend(a, 8)
		se = SignExtend(a, 8)
	})
	h.set(a, 0b1010, false)
	h.c.Eval(nil)
	if got, _, _ := h.get(ze); got != 0b00001010 {
		t.Fatalf("zext = %#b", got)
	}
	if got, _, _ := h.get(se); got != 0b11111010 {
		t.Fatalf("sext = %#b", got)
	}
	if w := Cat(a[:2], a[2:]); len(w) != 4 || w[0] != a[0] || w[3] != a[3] {
		t.Fatal("cat broken")
	}
	if s := Slice(a, 1, 3); len(s) != 2 || s[0] != a[1] {
		t.Fatal("slice broken")
	}
}

func TestReduceEdgeCases(t *testing.T) {
	var single netlist.NetID
	var zeroAnd, zeroOr netlist.NetID
	h := newHarness(t, func(b *Builder) {
		in := b.N.AddInput("x")
		single = b.AndN(in)
		zeroAnd = b.AndN()
		zeroOr = b.OrN()
	})
	h.c.SetInput(h.nl.MustNet("x"), logic.One0)
	h.c.Eval(nil)
	if h.c.Get(single).V != logic.One {
		t.Fatal("1-input reduce should pass through")
	}
	if h.c.Get(zeroAnd).V != logic.One || h.c.Get(zeroOr).V != logic.Zero {
		t.Fatal("empty reduce identities wrong")
	}
}

func TestIsZero(t *testing.T) {
	var a Word
	var z netlist.NetID
	h := newHarness(t, func(b *Builder) {
		a = b.InputWord("a", 16)
		z = b.IsZero(a)
	})
	h.set(a, 0, false)
	h.c.Eval(nil)
	if h.c.Get(z).V != logic.One {
		t.Fatal("iszero(0) != 1")
	}
	h.set(a, 0x8000, false)
	h.c.Eval(nil)
	if h.c.Get(z).V != logic.Zero {
		t.Fatal("iszero(0x8000) != 0")
	}
}

func TestScopeNaming(t *testing.T) {
	nl := netlist.New()
	b := NewBuilder(nl)
	alu := b.Scope("alu")
	id := alu.Named("cout")
	if nl.Name(id) != "alu.cout" {
		t.Fatalf("scoped name = %q", nl.Name(id))
	}
	inner := alu.Scope("adder")
	id2 := inner.Named("g")
	if nl.Name(id2) != "alu.adder.g" {
		t.Fatalf("nested scoped name = %q", nl.Name(id2))
	}
}

func TestRegisterLoopAndDrive(t *testing.T) {
	// A counter built with a feedback register.
	var q Word
	h := newHarness(t, func(b *Builder) {
		rst := b.N.AddInput("rst")
		var d Word
		q, d = b.RegisterLoop("cnt", 8, rst, b.High(), 0)
		b.Drive(d, b.Inc(q))
	})
	rst := h.nl.MustNet("rst")
	h.c.SetInput(rst, logic.One0)
	h.c.Eval(nil)
	h.c.Clock()
	h.c.SetInput(rst, logic.Zero0)
	for i := 0; i < 5; i++ {
		h.c.Eval(nil)
		h.c.Clock()
	}
	h.c.Eval(nil)
	if got, _, _ := h.get(q); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
}

func TestWidthMismatchPanics(t *testing.T) {
	nl := netlist.New()
	b := NewBuilder(nl)
	a := b.Const(4, 1)
	c := b.Const(8, 1)
	for name, f := range map[string]func(){
		"and":  func() { b.AndW(a, c) },
		"mux":  func() { b.MuxW(b.Low(), a, c) },
		"add":  func() { b.Add(a, c, b.Low()) },
		"tree": func() { b.MuxTree(a, []Word{a, c}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

// Property test: random adder inputs with X bits — the concrete bits of the
// result must match the arithmetic result whenever no X can influence them.
func TestPropertyAdderXSoundness(t *testing.T) {
	var a, c Word
	var sum Word
	h := newHarness(t, func(b *Builder) {
		a = b.InputWord("a", 8)
		c = b.InputWord("b", 8)
		sum, _, _ = b.Add(a, c, b.Low())
	})
	rnd := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		av, bv := uint64(rnd.Intn(256)), uint64(rnd.Intn(256))
		xmask := uint64(rnd.Intn(256))
		h.set(a, av, false)
		h.set(c, bv, false)
		for i := 0; i < 8; i++ {
			if xmask>>uint(i)&1 == 1 {
				h.c.SetInput(a[i], logic.X0)
			}
		}
		h.c.Eval(nil)
		// For every resolution of the X bits the concrete sum must be
		// covered by the ternary result.
		for res := uint64(0); res < 256; res++ {
			if res&^xmask != av&^xmask {
				continue
			}
			want := (res + bv) & 0xff
			for i := 0; i < 8; i++ {
				got := h.c.Get(sum[i])
				if got.V.Known() && got.V != logic.FromBool(want>>uint(i)&1 == 1) {
					t.Fatalf("a=%#x b=%#x xmask=%#x res=%#x: sum bit %d = %s, concrete wants %d",
						av, bv, xmask, res, i, got, want>>uint(i)&1)
				}
			}
		}
	}
}
