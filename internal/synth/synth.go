// Package synth provides structural synthesis helpers for building
// gate-level designs on top of the netlist IR: multi-bit words, adders,
// comparators, multiplexer trees, decoders and registers. It is the
// in-repo substitute for the EDA synthesis flow the paper used to obtain a
// processor netlist (see DESIGN.md); the microcontroller in internal/mcu is
// constructed entirely with these builders.
package synth

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// Word is a multi-bit signal bundle, least-significant bit first.
type Word []netlist.NetID

// Builder creates gates in a netlist with hierarchical, unique net names.
type Builder struct {
	N      *netlist.Netlist
	prefix string
	seq    *int
}

// NewBuilder wraps a netlist.
func NewBuilder(n *netlist.Netlist) *Builder {
	return &Builder{N: n, seq: new(int)}
}

// Scope returns a builder whose auto-generated and named nets are prefixed
// with name, giving the flat netlist a readable hierarchy.
func (b *Builder) Scope(name string) *Builder {
	p := name
	if b.prefix != "" {
		p = b.prefix + "." + name
	}
	return &Builder{N: b.N, prefix: p, seq: b.seq}
}

func (b *Builder) fresh(kind string) netlist.NetID {
	*b.seq++
	if b.prefix == "" {
		return b.N.NewNet(fmt.Sprintf("%s_%d", kind, *b.seq))
	}
	return b.N.NewNet(fmt.Sprintf("%s.%s_%d", b.prefix, kind, *b.seq))
}

// Named creates a net with an explicit (scoped) name; used for probe nets
// the analysis needs to find, such as "branch_taken".
func (b *Builder) Named(name string) netlist.NetID {
	if b.prefix != "" {
		name = b.prefix + "." + name
	}
	return b.N.NewNet(name)
}

// Low returns the constant-0 net; High the constant-1 net.
func (b *Builder) Low() netlist.NetID  { return b.N.Const0() }
func (b *Builder) High() netlist.NetID { return b.N.Const1() }

// gate creates an auto-named output net driven by op over the inputs.
func (b *Builder) gate(op logic.Op, in ...netlist.NetID) netlist.NetID {
	out := b.fresh(op.String())
	b.N.AddGate(op, out, in...)
	return out
}

// Single-gate helpers.
func (b *Builder) Not(a netlist.NetID) netlist.NetID         { return b.gate(logic.Not, a) }
func (b *Builder) Buf(a netlist.NetID) netlist.NetID         { return b.gate(logic.Buf, a) }
func (b *Builder) And(a, c netlist.NetID) netlist.NetID      { return b.gate(logic.And, a, c) }
func (b *Builder) Or(a, c netlist.NetID) netlist.NetID       { return b.gate(logic.Or, a, c) }
func (b *Builder) Nand(a, c netlist.NetID) netlist.NetID     { return b.gate(logic.Nand, a, c) }
func (b *Builder) Nor(a, c netlist.NetID) netlist.NetID      { return b.gate(logic.Nor, a, c) }
func (b *Builder) Xor(a, c netlist.NetID) netlist.NetID      { return b.gate(logic.Xor, a, c) }
func (b *Builder) Xnor(a, c netlist.NetID) netlist.NetID     { return b.gate(logic.Xnor, a, c) }
func (b *Builder) Mux(s, a0, a1 netlist.NetID) netlist.NetID { return b.gate(logic.Mux, s, a0, a1) }

// BufNamed drives a named probe net from an existing net.
func (b *Builder) BufNamed(name string, a netlist.NetID) netlist.NetID {
	out := b.Named(name)
	b.N.AddGate(logic.Buf, out, a)
	return out
}

// AndN reduces any number of nets with a balanced AND tree.
func (b *Builder) AndN(in ...netlist.NetID) netlist.NetID { return b.reduce(logic.And, in) }

// OrN reduces any number of nets with a balanced OR tree.
func (b *Builder) OrN(in ...netlist.NetID) netlist.NetID { return b.reduce(logic.Or, in) }

func (b *Builder) reduce(op logic.Op, in []netlist.NetID) netlist.NetID {
	switch len(in) {
	case 0:
		if op == logic.And {
			return b.High()
		}
		return b.Low()
	case 1:
		return in[0]
	}
	mid := len(in) / 2
	return b.gate(op, b.reduce(op, in[:mid]), b.reduce(op, in[mid:]))
}

// Const returns a width-bit word holding val, built from the constant nets.
func (b *Builder) Const(width int, val uint64) Word {
	w := make(Word, width)
	for i := range w {
		if val>>uint(i)&1 == 1 {
			w[i] = b.High()
		} else {
			w[i] = b.Low()
		}
	}
	return w
}

// InputWord declares width primary inputs named name0..name<width-1>.
func (b *Builder) InputWord(name string, width int) Word {
	w := make(Word, width)
	for i := range w {
		w[i] = b.N.AddInput(fmt.Sprintf("%s%d", name, i))
	}
	return w
}

// OutputWord declares the word's nets as primary outputs name0...
func (b *Builder) OutputWord(name string, w Word) {
	for i, id := range w {
		b.N.AddOutput(fmt.Sprintf("%s%d", name, i), id)
	}
}

// NamedWord creates width fresh nets named name0.. under the scope; used
// for multi-bit probe points.
func (b *Builder) NamedWord(name string, width int) Word {
	w := make(Word, width)
	for i := range w {
		w[i] = b.Named(fmt.Sprintf("%s%d", name, i))
	}
	return w
}

// Bitwise word operations (operands must have equal width).
func (b *Builder) NotW(a Word) Word    { return b.mapW(logic.Not, a, nil) }
func (b *Builder) AndW(a, c Word) Word { return b.mapW(logic.And, a, c) }
func (b *Builder) OrW(a, c Word) Word  { return b.mapW(logic.Or, a, c) }
func (b *Builder) XorW(a, c Word) Word { return b.mapW(logic.Xor, a, c) }

func (b *Builder) mapW(op logic.Op, a, c Word) Word {
	out := make(Word, len(a))
	for i := range a {
		if c == nil {
			out[i] = b.gate(op, a[i])
		} else {
			if len(c) != len(a) {
				panic("synth: width mismatch")
			}
			out[i] = b.gate(op, a[i], c[i])
		}
	}
	return out
}

// MuxW selects between two equal-width words: sel=0 -> a0, sel=1 -> a1.
func (b *Builder) MuxW(sel netlist.NetID, a0, a1 Word) Word {
	if len(a0) != len(a1) {
		panic("synth: mux width mismatch")
	}
	out := make(Word, len(a0))
	for i := range a0 {
		out[i] = b.Mux(sel, a0[i], a1[i])
	}
	return out
}

// MuxTree selects opts[sel] where sel is an LSB-first select word and
// len(opts) == 1<<len(sel).
func (b *Builder) MuxTree(sel Word, opts []Word) Word {
	if len(opts) != 1<<uint(len(sel)) {
		panic(fmt.Sprintf("synth: mux tree wants %d options, got %d", 1<<uint(len(sel)), len(opts)))
	}
	if len(sel) == 0 {
		return opts[0]
	}
	msb := sel[len(sel)-1]
	half := len(opts) / 2
	lo := b.MuxTree(sel[:len(sel)-1], opts[:half])
	hi := b.MuxTree(sel[:len(sel)-1], opts[half:])
	return b.MuxW(msb, lo, hi)
}

// Add builds a ripple-carry adder: sum = a + c + cin, returning the carry
// out of the top bit and the carry into the top bit (needed for overflow).
func (b *Builder) Add(a, c Word, cin netlist.NetID) (sum Word, cout, cpen netlist.NetID) {
	if len(a) != len(c) {
		panic("synth: adder width mismatch")
	}
	sum = make(Word, len(a))
	carry := cin
	cpen = cin
	for i := range a {
		axc := b.Xor(a[i], c[i])
		sum[i] = b.Xor(axc, carry)
		gen := b.And(a[i], c[i])
		prop := b.And(axc, carry)
		cpen = carry
		carry = b.Or(gen, prop)
	}
	return sum, carry, cpen
}

// AddFull builds a ripple-carry adder returning the full carry vector:
// carries[i] is the carry out of bit i. This lets byte-mode datapaths pick
// the carry out of bit 7 and overflow logic pick the carry into the MSB.
func (b *Builder) AddFull(a, c Word, cin netlist.NetID) (sum, carries Word) {
	if len(a) != len(c) {
		panic("synth: adder width mismatch")
	}
	sum = make(Word, len(a))
	carries = make(Word, len(a))
	carry := cin
	for i := range a {
		axc := b.Xor(a[i], c[i])
		sum[i] = b.Xor(axc, carry)
		gen := b.And(a[i], c[i])
		prop := b.And(axc, carry)
		carry = b.Or(gen, prop)
		carries[i] = carry
	}
	return sum, carries
}

// Inc returns a+1 (no carry out).
func (b *Builder) Inc(a Word) Word {
	s, _, _ := b.Add(a, b.Const(len(a), 0), b.High())
	return s
}

// AddConst returns a+k (no carry out).
func (b *Builder) AddConst(a Word, k uint64) Word {
	s, _, _ := b.Add(a, b.Const(len(a), k), b.Low())
	return s
}

// EqConst compares a word against a constant, producing a single net.
func (b *Builder) EqConst(a Word, v uint64) netlist.NetID {
	terms := make([]netlist.NetID, len(a))
	for i := range a {
		if v>>uint(i)&1 == 1 {
			terms[i] = a[i]
		} else {
			terms[i] = b.Not(a[i])
		}
	}
	return b.AndN(terms...)
}

// EqW compares two equal-width words.
func (b *Builder) EqW(a, c Word) netlist.NetID {
	terms := make([]netlist.NetID, len(a))
	for i := range a {
		terms[i] = b.Xnor(a[i], c[i])
	}
	return b.AndN(terms...)
}

// Decode produces the one-hot decoding of sel (LSB first): out[i] is high
// when sel == i.
func (b *Builder) Decode(sel Word) []netlist.NetID {
	n := 1 << uint(len(sel))
	out := make([]netlist.NetID, n)
	for i := 0; i < n; i++ {
		out[i] = b.EqConst(sel, uint64(i))
	}
	return out
}

// OrReduce ORs all bits of a word. AndReduce ANDs them.
func (b *Builder) OrReduce(w Word) netlist.NetID  { return b.OrN(w...) }
func (b *Builder) AndReduce(w Word) netlist.NetID { return b.AndN(w...) }

// IsZero is high when every bit of w is 0.
func (b *Builder) IsZero(w Word) netlist.NetID { return b.Not(b.OrReduce(w)) }

// Register creates a bank of flip-flops named name0.. loading d when en is
// high, resetting to the bits of rstVal when rst is high. It returns the Q
// word.
func (b *Builder) Register(name string, d Word, rst, en netlist.NetID, rstVal uint64) Word {
	q := b.NamedWord(name, len(d))
	for i := range d {
		b.N.AddDFF(q[i], d[i], rst, en, logic.FromBool(rstVal>>uint(i)&1 == 1))
	}
	return q
}

// RegisterLoop creates a register whose D input is wired up later (for
// feedback paths): it returns both Q and the D nets to be driven by the
// caller via Drive.
func (b *Builder) RegisterLoop(name string, width int, rst, en netlist.NetID, rstVal uint64) (q, d Word) {
	q = b.NamedWord(name, width)
	d = b.NamedWord(name+"_d", width)
	for i := 0; i < width; i++ {
		b.N.AddDFF(q[i], d[i], rst, en, logic.FromBool(rstVal>>uint(i)&1 == 1))
	}
	return q, d
}

// Drive connects each target net (previously created undriven, e.g. by
// RegisterLoop or NamedWord) to its source via a buffer.
func (b *Builder) Drive(target, source Word) {
	if len(target) != len(source) {
		panic("synth: drive width mismatch")
	}
	for i := range target {
		b.N.AddGate(logic.Buf, target[i], source[i])
	}
}

// DriveBit connects a single undriven named net to a source.
func (b *Builder) DriveBit(target, source netlist.NetID) {
	b.N.AddGate(logic.Buf, target, source)
}

// Repl replicates one net into an n-bit word.
func (b *Builder) Repl(bit netlist.NetID, n int) Word {
	w := make(Word, n)
	for i := range w {
		w[i] = bit
	}
	return w
}

// ZeroExtend widens w to width bits with constant zeros (pure wiring).
func (b *Builder) ZeroExtend(w Word, width int) Word {
	out := make(Word, width)
	copy(out, w)
	for i := len(w); i < width; i++ {
		out[i] = b.Low()
	}
	return out
}

// SignExtend widens w to width bits by replicating its MSB (pure wiring).
func SignExtend(w Word, width int) Word {
	out := make(Word, width)
	copy(out, w)
	for i := len(w); i < width; i++ {
		out[i] = w[len(w)-1]
	}
	return out
}

// Slice returns bits [lo,hi) of a word (pure wiring).
func Slice(w Word, lo, hi int) Word { return w[lo:hi:hi] }

// Cat concatenates words, first argument least significant (pure wiring).
func Cat(ws ...Word) Word {
	var out Word
	for _, w := range ws {
		out = append(out, w...)
	}
	return out
}

// ShiftLeft1 returns w<<1 with fill shifted into bit 0 (pure wiring).
func ShiftLeft1(w Word, fill netlist.NetID) Word {
	out := make(Word, len(w))
	out[0] = fill
	copy(out[1:], w[:len(w)-1])
	return out
}

// ShiftRight1 returns w>>1 with fill shifted into the MSB (pure wiring).
func ShiftRight1(w Word, fill netlist.NetID) Word {
	out := make(Word, len(w))
	copy(out, w[1:])
	out[len(w)-1] = fill
	return out
}
