package bench

import (
	"testing"

	"repro/internal/glift"
)

// TestAlwaysOnVerifiesSecure checks the premise behind the paper's
// "without analysis" baseline: masking every store and bounding every
// tainted task achieves security even with no application knowledge — it
// is just 2-3x more expensive. We verify the always-on builds with the
// analysis itself.
func TestAlwaysOnVerifiesSecure(t *testing.T) {
	for _, name := range []string{"binSearch", "tHold", "mult", "tea8"} {
		b := ByName(name)
		unmod, err := BuildUnmodified(b)
		if err != nil {
			t.Fatal(err)
		}
		m, err := Measure(unmod, 0xACE1, 300_000)
		if err != nil {
			t.Fatal(err)
		}
		always, err := BuildProtected(b, AlwaysOn, nil, unmod, m.TaskCycles)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := glift.Analyze(always.Img, always.Policy, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.ByKind(glift.C1TaintedState)) > 0 || len(rep.ByKind(glift.C2MemoryEscape)) > 0 {
			t.Errorf("%s: always-on variant violates C1/C2: %v", name, rep.Violations)
		}
	}
}
