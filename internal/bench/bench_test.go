package bench

import (
	"sync"
	"testing"

	"repro/internal/energy"
	"repro/internal/glift"
)

// Evaluations are expensive (symbolic analysis of 3 variants x 13
// benchmarks); run once and share across tests.
var (
	evalOnce sync.Once
	evals    []*Evaluation
	evalErr  error
)

func allEvals(t *testing.T) []*Evaluation {
	t.Helper()
	evalOnce.Do(func() {
		evals, evalErr = EvaluateAll(nil)
	})
	if evalErr != nil {
		t.Fatal(evalErr)
	}
	return evals
}

func TestBenchmarkListMatchesTable1(t *testing.T) {
	want := []string{"binSearch", "div", "inSort", "intAVG", "intFilt", "mult",
		"rle", "tHold", "tea8", "FFT", "Viterbi", "ConvEn", "autocorr"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("have %d benchmarks, want %d", len(all), len(want))
	}
	for i, b := range all {
		if b.Name != want[i] {
			t.Errorf("benchmark %d = %s, want %s", i, b.Name, want[i])
		}
	}
	if ByName("nonexistent") != nil {
		t.Error("ByName ghost hit")
	}
	if ByName("tea8") == nil {
		t.Error("ByName miss")
	}
}

// TestTable2 reproduces the paper's Table 2: exactly the six benchmarks
// binSearch, div, inSort, intAVG, tHold and Viterbi violate sufficient
// conditions 1 and 2 before modification, and none violate after.
func TestTable2(t *testing.T) {
	rows, _ := Tables(allEvals(t))
	for _, r := range rows {
		if r.ExpectC1C2 {
			if !r.UnmodC1 || !r.UnmodC2 {
				t.Errorf("%s: expected C1+C2 violations, got C1=%v C2=%v", r.Name, r.UnmodC1, r.UnmodC2)
			}
		} else if r.UnmodC1 || r.UnmodC2 {
			t.Errorf("%s: expected clean, got C1=%v C2=%v", r.Name, r.UnmodC1, r.UnmodC2)
		}
		if r.ModC1 || r.ModC2 {
			t.Errorf("%s: modified program still violates C1=%v C2=%v", r.Name, r.ModC1, r.ModC2)
		}
	}
}

// TestModifiedSystemsVerifySecure is the paper's headline guarantee: after
// the toolflow's software modifications, the analysis reports zero possible
// violations of the information flow policy.
func TestModifiedSystemsVerifySecure(t *testing.T) {
	for _, ev := range allEvals(t) {
		if !ev.WithReport.Secure() {
			t.Errorf("%s: modified system not secure: %v", ev.Bench.Name, ev.WithReport.Violations)
		}
	}
}

// TestTable3Shape checks the structural claims of Table 3: applications
// without vulnerabilities incur zero overhead under application-specific
// analysis, the always-on baseline pays on every benchmark, and targeted
// protection is never more expensive than always-on.
func TestTable3Shape(t *testing.T) {
	_, rows := Tables(allEvals(t))
	for _, r := range rows {
		if !r.Watchdog && r.With != 0 {
			t.Errorf("%s: clean benchmark has %0.2f%% with-analysis overhead", r.Name, r.With)
		}
		if r.Without <= 0 {
			t.Errorf("%s: always-on overhead %0.2f%% should be positive", r.Name, r.Without)
		}
		if r.With > r.Without+1 {
			t.Errorf("%s: with-analysis (%0.2f%%) exceeds always-on (%0.2f%%)", r.Name, r.With, r.Without)
		}
	}
	if f := ReductionFactor(rows); f < 1.3 {
		t.Errorf("overhead reduction factor = %0.2fx, expected well above 1x (paper: 3.3x)", f)
	}
}

// TestCPIBand: the paper reports benchmark CPI between 1.25 and 1.39 on its
// openMSP430; our core's band is comparable (1.0-1.5).
func TestCPIBand(t *testing.T) {
	for _, ev := range allEvals(t) {
		cpi := ev.UnmodMeasure.CPI()
		if cpi < 1.0 || cpi > 1.5 {
			t.Errorf("%s: CPI %.2f outside [1.0, 1.5]", ev.Bench.Name, cpi)
		}
	}
}

// TestEnergyOverheadBand: the average energy overhead of the
// analysis-guided protection lands in the tens of percent (the paper
// reports 15% on its benchmarks/netlist).
func TestEnergyOverheadBand(t *testing.T) {
	model := energy.Default
	var sum float64
	n := 0
	for _, ev := range allEvals(t) {
		if ev.WithMeasure == nil {
			continue
		}
		o := model.OverheadPercent(
			ev.UnmodMeasure.PeriodCycles, ev.UnmodMeasure.Toggles,
			ev.WithMeasure.PeriodCycles, ev.WithMeasure.Toggles)
		sum += o
		n++
	}
	if n < 7 {
		t.Fatalf("only %d benchmarks measured", n)
	}
	avg := sum / float64(n)
	if avg < 1 || avg > 80 {
		t.Errorf("average energy overhead %.1f%% outside the plausible band", avg)
	}
	t.Logf("average with-analysis energy overhead: %.1f%% over %d benchmarks (paper: 15%%)", avg, n)
}

// TestMeasureDeterminism: the LFSR-driven concrete runs are reproducible.
func TestMeasureDeterminism(t *testing.T) {
	bt, err := BuildUnmodified(ByName("tea8"))
	if err != nil {
		t.Fatal(err)
	}
	m1, err := Measure(bt, 0x1234, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Measure(bt, 0x1234, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if *m1 != *m2 {
		t.Fatalf("nondeterministic measurement: %+v vs %+v", m1, m2)
	}
}

// TestVariantString covers the Stringer.
func TestVariantString(t *testing.T) {
	if Unmodified.String() != "unmodified" || WithAnalysis.String() != "with-analysis" || AlwaysOn.String() != "always-on" {
		t.Fatal("variant names")
	}
}

// TestAnalysisStatsReported: the per-benchmark analysis stats used for the
// footnote-4 runtime discussion are populated.
func TestAnalysisStatsReported(t *testing.T) {
	for _, ev := range allEvals(t) {
		st := ev.UnmodReport.Stats
		if st.Cycles == 0 || st.Paths == 0 {
			t.Errorf("%s: empty analysis stats %s", ev.Bench.Name, st)
		}
		if st.WallNanos <= 0 {
			t.Errorf("%s: missing wall time", ev.Bench.Name)
		}
	}
}

// TestPolicyShape sanity-checks the per-benchmark policy labels.
func TestPolicyShape(t *testing.T) {
	bt, err := BuildUnmodified(ByName("mult"))
	if err != nil {
		t.Fatal(err)
	}
	p := bt.Policy
	if !p.TaintedInPort(0) || p.TaintedInPort(2) {
		t.Error("P1IN should be the only tainted input")
	}
	if !p.TaintedOutPort(1) || p.TaintedOutPort(3) {
		t.Error("P2OUT should be the only tainted output")
	}
	if len(p.TaintedCode) != 1 || p.TaintedCode[0].Lo >= p.TaintedCode[0].Hi {
		t.Error("tainted code partition malformed")
	}
	if _, err := glift.Analyze(bt.Img, p, nil); err != nil {
		t.Error(err)
	}
}
