package bench

import (
	"testing"

	"repro/internal/transform"
)

// TestBuildUnmodifiedShared: the unmodified system is assembled once per
// benchmark; later builds reuse the image instead of reassembling.
func TestBuildUnmodifiedShared(t *testing.T) {
	b := ByName("mult")
	bt1, err := BuildUnmodified(b)
	if err != nil {
		t.Fatal(err)
	}
	bt2, err := BuildUnmodified(b)
	if err != nil {
		t.Fatal(err)
	}
	if bt1 != bt2 || bt1.Img != bt2.Img {
		t.Error("BuildUnmodified should return the shared assembled system")
	}
}

// TestScaffoldCacheIsolation: variant builds draw parsed scaffolds from a
// cache but must never perturb it — a masked build followed by an unmasked
// build of the same scaffold yields the original image.
func TestScaffoldCacheIsolation(t *testing.T) {
	b := ByName("inSort")
	unmod, err := BuildUnmodified(b)
	if err != nil {
		t.Fatal(err)
	}
	off, err := taskStmtOffset(unmod.Stmts)
	if err != nil {
		t.Fatal(err)
	}
	flaggedLines := map[int]bool{}
	for _, si := range transform.MaskableStoreIdxs(unmod.Stmts) {
		if si >= off {
			flaggedLines[unmod.Stmts[si].Line] = true
		}
	}
	if len(flaggedLines) == 0 {
		t.Fatal("benchmark has no maskable task stores")
	}
	masked, err := buildVariant(b, AlwaysOn, false, transform.WdtPlan{}, flaggedLines)
	if err != nil {
		t.Fatal(err)
	}
	if masked.Masked == 0 {
		t.Fatal("masked variant inserted nothing")
	}
	// Same scaffold, no flags: must reproduce the unmodified image exactly
	// even though the masked build relabelled its statement copies.
	plain, err := buildVariant(b, Unmodified, false, transform.WdtPlan{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Img.Entry != unmod.Img.Entry || len(plain.Img.Segments) != len(unmod.Img.Segments) {
		t.Fatalf("cache perturbed: entry/segments differ (%+v vs %+v)", plain.Img, unmod.Img)
	}
	for i, seg := range unmod.Img.Segments {
		got := plain.Img.Segments[i]
		if got.Addr != seg.Addr || len(got.Words) != len(seg.Words) {
			t.Fatalf("cache perturbed: segment %d shape differs", i)
		}
		for k, w := range seg.Words {
			if got.Words[k] != w {
				t.Fatalf("cache perturbed: segment %d word %d = %#x, want %#x", i, k, got.Words[k], w)
			}
		}
	}
}
