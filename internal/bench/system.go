package bench

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/asm"
	"repro/internal/glift"
	"repro/internal/transform"
)

// Variant selects a protection configuration for a benchmark system.
type Variant int

// Variants.
const (
	// Unmodified is the original application.
	Unmodified Variant = iota
	// WithAnalysis applies only the protections the application-specific
	// analysis proves necessary (the paper's approach).
	WithAnalysis
	// AlwaysOn masks every maskable task store and time-bounds the tainted
	// task unconditionally — the software baseline with no application
	// knowledge.
	AlwaysOn
)

func (v Variant) String() string {
	switch v {
	case Unmodified:
		return "unmodified"
	case WithAnalysis:
		return "with-analysis"
	default:
		return "always-on"
	}
}

// Built is an assembled benchmark system plus its policy and metadata.
type Built struct {
	Bench   *Benchmark
	Variant Variant
	Stmts   []asm.Stmt
	Img     *asm.Image
	Policy  *glift.Policy
	// Masked is the number of store sites protected by masking.
	Masked int
	// Watchdog reports whether the watchdog bound is armed, with its plan.
	Watchdog bool
	Plan     transform.WdtPlan
}

// partition is the benchmarks' tainted data partition.
var partition = transform.Partition{Lo: PartLo, Size: PartSize}

// header emits the shared equates and system code. When armed, the tainted
// task ends in an in-partition idle loop and the watchdog (already armed by
// the untainted system code) recovers the pipeline with a power-on reset;
// otherwise the task jumps straight back into the untainted system code.
func header(armed bool, wdtval uint16) string {
	var sb strings.Builder
	sb.WriteString(`
.equ WDTCTL, 0x0120
.equ P1IN, 0x0020
.equ P2OUT, 0x0026
.equ TPART, 0x0400
start:  mov #0x0400, sp
`)
	if armed {
		fmt.Fprintf(&sb, "sysloop: mov #0x%04x, &WDTCTL ; arm the deterministic bound\n", wdtval)
		sb.WriteString("        jmp task\n")
		sb.WriteString("task_start:\n")
	} else {
		sb.WriteString("sysloop: jmp task\n")
		sb.WriteString("task_done: jmp sysloop\n")
		sb.WriteString("task_start:\n")
	}
	return sb.String()
}

func trailer(armed bool) string {
	if armed {
		// The idle loop belongs to the tainted partition: the task parks
		// here with a possibly tainted PC until the watchdog fires.
		return "task_done: jmp task_done ; idle until the watchdog reset\ntask_end: nop\n"
	}
	return "task_end: nop\n"
}

// buildSource assembles the full system text for a benchmark.
func buildSource(b *Benchmark, armed bool, wdtval uint16) string {
	return header(armed, wdtval) + b.Task + trailer(armed)
}

// Source is the unarmed full system text for a benchmark — the program the
// repair toolflow (secure430 and gliftd repair jobs) takes as input. The
// differential suites feed the same text to both paths.
func Source(b *Benchmark) string {
	return buildSource(b, false, 0)
}

// policyFor labels the system: P1IN tainted source, P2OUT legal tainted
// sink, the task's code partition tainted, the data partition allocated.
func policyFor(img *asm.Image) *glift.Policy {
	return &glift.Policy{
		Name:            "integrity",
		TaintedInPorts:  []int{0},
		TaintedOutPorts: []int{1},
		TaintedCode: []glift.AddrRange{{
			Lo: img.MustSymbol("task_start"),
			Hi: img.MustSymbol("task_end"),
		}},
		TaintedData: []glift.AddrRange{{Lo: PartLo, Hi: PartLo + PartSize}},
	}
}

// Building a system is pure in its source text, but the evaluation
// pipeline used to rebuild the same text over and over: the unmodified
// image was reassembled for every measurement and variant derivation, and
// each repair round re-parsed an identical scaffold. Both are memoized
// here. The unmodified Built is shared read-only per benchmark; parsed
// scaffolds are cached by source text with callers handed fresh slice
// copies, since mask insertion relabels statements.
var (
	unmodMu    sync.Mutex
	unmodCache = map[string]*Built{}
	parseCache sync.Map // source text -> []asm.Stmt (never mutated)
)

// BuildUnmodified assembles the original system once per benchmark and
// returns the shared, read-only result on every later call.
func BuildUnmodified(b *Benchmark) (*Built, error) {
	unmodMu.Lock()
	defer unmodMu.Unlock()
	if bt, ok := unmodCache[b.Name]; ok {
		return bt, nil
	}
	src := buildSource(b, false, 0)
	img, err := asm.AssembleSource(src)
	if err != nil {
		return nil, fmt.Errorf("bench %s: %w", b.Name, err)
	}
	bt := &Built{
		Bench: b, Variant: Unmodified,
		Stmts: img.Stmts, Img: img, Policy: policyFor(img),
	}
	unmodCache[b.Name] = bt
	return bt, nil
}

// parseScaffold parses a system source through the cache, returning a copy
// the caller may extend or relabel freely.
func parseScaffold(src string) ([]asm.Stmt, error) {
	if cached, ok := parseCache.Load(src); ok {
		return append([]asm.Stmt(nil), cached.([]asm.Stmt)...), nil
	}
	stmts, err := asm.Parse(src)
	if err != nil {
		return nil, err
	}
	parseCache.Store(src, stmts)
	return append([]asm.Stmt(nil), stmts...), nil
}

// taskStmtOffset finds the statement index of the "task" label.
func taskStmtOffset(stmts []asm.Stmt) (int, error) {
	for i := range stmts {
		if stmts[i].Label == "task" {
			return i, nil
		}
	}
	return 0, fmt.Errorf("bench: no task label")
}

// buildVariant assembles a variant from the set of flagged source lines
// (statements carry their original source line numbers through mask
// insertion, since inserted statements have Line 0; the armed and unarmed
// scaffolds occupy the same number of source lines).
func buildVariant(b *Benchmark, v Variant, armed bool, plan transform.WdtPlan, flaggedLines map[int]bool) (*Built, error) {
	src := buildSource(b, armed, plan.WDTCTLValue())
	stmts, err := parseScaffold(src)
	if err != nil {
		return nil, fmt.Errorf("bench %s: %w", b.Name, err)
	}
	flagged := map[int]bool{}
	for i := range stmts {
		if stmts[i].Line > 0 && flaggedLines[stmts[i].Line] {
			flagged[i] = true
		}
	}
	masked := 0
	if len(flagged) > 0 {
		stmts, masked, err = transform.InsertMasks(stmts, flagged, partition)
		if err != nil {
			return nil, fmt.Errorf("bench %s: %w", b.Name, err)
		}
	}
	img, err := asm.Assemble(stmts)
	if err != nil {
		return nil, fmt.Errorf("bench %s (%s): %w\n%s", b.Name, v, err, asm.Print(stmts))
	}
	return &Built{
		Bench: b, Variant: v, Stmts: stmts, Img: img, Policy: policyFor(img),
		Masked: masked, Watchdog: armed, Plan: plan,
	}, nil
}

// BuildProtected derives a protected variant.
//
// WithAnalysis runs the paper's iterative toolflow (Figure 11): analyze,
// mask the root-cause stores, re-analyze — because fixing a primary
// violation (e.g. an overflow store whose cover reaches the watchdog)
// removes the conservative downstream violations it induced — and arm the
// watchdog bound once tainted control flow is confirmed. taskCycles is the
// measured unprotected task length used for slice planning.
//
// AlwaysOn masks every maskable task store and always arms the watchdog.
func BuildProtected(b *Benchmark, v Variant, report *glift.Report, unmod *Built, taskCycles uint64) (*Built, error) {
	off0, err := taskStmtOffset(unmod.Stmts)
	if err != nil {
		return nil, err
	}

	if v == AlwaysOn {
		flaggedLines := map[int]bool{}
		for _, si := range transform.MaskableStoreIdxs(unmod.Stmts) {
			if si >= off0 {
				flaggedLines[unmod.Stmts[si].Line] = true
			}
		}
		plan := transform.PlanWatchdog(taskCycles + 4*uint64(len(flaggedLines)))
		return buildVariant(b, v, true, plan, flaggedLines)
	}

	if report == nil {
		return nil, fmt.Errorf("bench: WithAnalysis requires a report")
	}
	flaggedLines := map[int]bool{}
	armed := false
	cur := unmod
	rep := report
	for round := 0; round < 8; round++ {
		progress := false
		for _, pc := range rep.ViolatingStorePCs() {
			si, ok := cur.Img.AddrToStmt[pc]
			if !ok {
				continue
			}
			st := cur.Stmts[si]
			if st.Line == 0 {
				continue // an inserted mask instruction cannot be the root cause
			}
			if _, maskable := transform.MaskableStoreTarget(&st); !maskable {
				continue // conservative downstream noise (e.g. port stores)
			}
			if !flaggedLines[st.Line] {
				flaggedLines[st.Line] = true
				progress = true
			}
		}
		if rep.NeedsWatchdog() && !armed {
			armed = true
			progress = true
		}
		if !progress {
			break
		}
		plan := transform.PlanWatchdog(taskCycles + 4*uint64(len(flaggedLines)))
		cur, err = buildVariant(b, v, armed, plan, flaggedLines)
		if err != nil {
			return nil, err
		}
		rep, err = glift.Analyze(cur.Img, cur.Policy, nil)
		if err != nil {
			return nil, err
		}
	}
	if cur == unmod {
		// Nothing to fix: the protected variant is the unmodified program.
		return &Built{
			Bench: b, Variant: v, Stmts: unmod.Stmts, Img: unmod.Img,
			Policy: unmod.Policy,
		}, nil
	}
	return cur, nil
}
