package bench

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/asm"
	"repro/internal/glift"
	"repro/internal/mcu"
	"repro/internal/sim"
	"repro/internal/transform"
)

// lfsr is the deterministic input-sample generator for concrete runs.
type lfsr uint16

func (l *lfsr) next() uint16 {
	v := uint16(*l)
	bit := (v>>0 ^ v>>2 ^ v>>3 ^ v>>5) & 1
	v = v>>1 | bit<<15
	*l = lfsr(v)
	return v
}

// Measurement is the concrete-execution profile of one system variant.
type Measurement struct {
	// PeriodCycles is the steady-state distance between successive task
	// activations (for watchdog-bounded variants this includes the idle
	// padding and the power-on reset).
	PeriodCycles uint64
	// TaskCycles is the execution time of the task body itself.
	TaskCycles uint64
	// Insns executed per period; CPI = PeriodCycles/Insns.
	Insns uint64
	// Toggles is the flip-flop switching activity per period.
	Toggles uint64
}

// CPI returns cycles per instruction over the period.
func (m Measurement) CPI() float64 {
	if m.Insns == 0 {
		return 0
	}
	return float64(m.PeriodCycles) / float64(m.Insns)
}

// Measure runs a built system concretely with deterministic pseudo-random
// tainted-port samples and profiles one steady-state task period.
func Measure(bt *Built, seed uint16, maxCycles uint64) (*Measurement, error) {
	return MeasureContext(context.Background(), bt, seed, maxCycles)
}

// MeasureContext is Measure under a cancellation context, checked between
// simulated cycles so deadlines and SIGINT abort a stuck run cleanly.
func MeasureContext(ctx context.Context, bt *Built, seed uint16, maxCycles uint64) (*Measurement, error) {
	sys, err := mcu.NewSystem(glift.SharedDesign())
	if err != nil {
		return nil, err
	}
	zeros := make([]byte, sys.RAM.Size())
	sys.RAM.Fill(sys.RAM.Base(), zeros)
	bt.Img.Place(func(a, w uint16) { sys.ROM.StoreWord(a, sim.ConcreteWord(w)) })
	sys.SetResetVector(bt.Img.Entry)

	taskAddr, err := bt.Img.ResolveSymbol("task")
	if err != nil {
		return nil, fmt.Errorf("bench %s (%s): %w", bt.Bench.Name, bt.Variant, err)
	}
	doneAddr, err := bt.Img.ResolveSymbol("task_done")
	if err != nil {
		return nil, fmt.Errorf("bench %s (%s): %w", bt.Bench.Name, bt.Variant, err)
	}

	rng := lfsr(seed | 1)
	sys.PowerOn()

	type mark struct {
		cycle, insns, toggles uint64
	}
	var taskEntries []mark
	var doneSeen []mark
	var insns uint64
	for sys.Cycle < maxCycles && len(taskEntries) < 3 {
		if sys.Cycle&1023 == 0 && ctx.Err() != nil {
			return nil, fmt.Errorf("bench %s (%s): measurement cancelled at cycle %d: %w", bt.Bench.Name, bt.Variant, sys.Cycle, ctx.Err())
		}
		sys.SetPortIn(0, sim.ConcreteWord(rng.next()))
		ci := sys.EvalCycle(nil)
		if !ci.PmemOK {
			return nil, fmt.Errorf("bench %s (%s): PC unknown at cycle %d", bt.Bench.Name, bt.Variant, sys.Cycle)
		}
		if ci.StateOK && ci.State == mcu.StFetch {
			insns++
			m := mark{cycle: sys.Cycle, insns: insns, toggles: sys.C.Toggles}
			if ci.PmemAddr == taskAddr {
				taskEntries = append(taskEntries, m)
			}
			if ci.PmemAddr == doneAddr && len(doneSeen) < len(taskEntries) {
				doneSeen = append(doneSeen, m)
			}
		}
		sys.Commit(ci)
	}
	if len(taskEntries) < 2 || len(doneSeen) < 1 {
		return nil, fmt.Errorf("bench %s (%s): did not reach steady state in %d cycles", bt.Bench.Name, bt.Variant, maxCycles)
	}
	a, b := taskEntries[len(taskEntries)-2], taskEntries[len(taskEntries)-1]
	return &Measurement{
		PeriodCycles: b.cycle - a.cycle,
		TaskCycles:   doneSeen[0].cycle - taskEntries[0].cycle,
		Insns:        b.insns - a.insns,
		Toggles:      b.toggles - a.toggles,
	}, nil
}

// Evaluation is the full per-benchmark result set feeding Tables 2 and 3.
type Evaluation struct {
	Bench *Benchmark

	Unmod        *Built
	UnmodReport  *glift.Report
	UnmodMeasure *Measurement

	With        *Built
	WithReport  *glift.Report
	WithMeasure *Measurement

	Always        *Built
	AlwaysMeasure *Measurement
}

// UnmodC1 and UnmodC2 are the Table 2 "unmodified" cells.
func (e *Evaluation) UnmodC1() bool { return len(e.UnmodReport.ByKind(glift.C1TaintedState)) > 0 }
func (e *Evaluation) UnmodC2() bool { return len(e.UnmodReport.ByKind(glift.C2MemoryEscape)) > 0 }

// ModC1 and ModC2 are the Table 2 "modified" cells.
func (e *Evaluation) ModC1() bool { return len(e.WithReport.ByKind(glift.C1TaintedState)) > 0 }
func (e *Evaluation) ModC2() bool { return len(e.WithReport.ByKind(glift.C2MemoryEscape)) > 0 }

// period returns the effective steady-state period of a variant. Watchdog
// bounds with multiple slices assume RTOS-style context checkpointing that
// the single-task harness cannot run physically (Section 7.2's cost model),
// so the analytic bound plus the per-slice switching cost stands in; every
// other configuration uses the measured period.
func period(bt *Built, m *Measurement) uint64 {
	if bt.Watchdog && bt.Plan.Slices > 1 {
		return bt.Plan.BoundCycles
	}
	if m != nil {
		return m.PeriodCycles
	}
	return bt.Plan.BoundCycles
}

// OverheadWith returns the Table 3 "with analysis" overhead percent.
func (e *Evaluation) OverheadWith() float64 {
	return overheadPct(e.UnmodMeasure.PeriodCycles, period(e.With, e.WithMeasure))
}

// OverheadWithout returns the Table 3 "without analysis" overhead percent.
func (e *Evaluation) OverheadWithout() float64 {
	return overheadPct(e.UnmodMeasure.PeriodCycles, period(e.Always, e.AlwaysMeasure))
}

func overheadPct(base, prot uint64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * float64(int64(prot)-int64(base)) / float64(base)
}

// Options tunes an evaluation run.
type Options struct {
	Seed        uint16
	MaxCycles   uint64 // concrete-run budget per variant
	AnalysisOpt *glift.Options
}

func (o *Options) defaults() Options {
	out := Options{Seed: 0xACE1, MaxCycles: 300_000}
	if o != nil {
		if o.Seed != 0 {
			out.Seed = o.Seed
		}
		if o.MaxCycles != 0 {
			out.MaxCycles = o.MaxCycles
		}
		out.AnalysisOpt = o.AnalysisOpt
	}
	return out
}

// Evaluate runs the full pipeline for one benchmark: analyze the unmodified
// system, derive both protected variants, re-verify the analysis-guided one
// and measure all three concretely.
func Evaluate(b *Benchmark, opt *Options) (*Evaluation, error) {
	return EvaluateContext(context.Background(), b, opt)
}

// EvaluateContext is Evaluate under a cancellation context, threaded through
// both the symbolic analyses and the concrete measurement runs.
func EvaluateContext(ctx context.Context, b *Benchmark, opt *Options) (*Evaluation, error) {
	o := opt.defaults()
	ev := &Evaluation{Bench: b}

	// A cancelled symbolic exploration returns a partial report with the
	// Incomplete verdict rather than an error; surface the cancellation as
	// an error here so batch pipelines do not tabulate truncated results.
	analyze := func(img *asm.Image, pol *glift.Policy) (*glift.Report, error) {
		rep, err := glift.AnalyzeContext(ctx, img, pol, o.AnalysisOpt)
		if err != nil {
			return nil, err
		}
		if ctx.Err() != nil {
			return nil, fmt.Errorf("bench %s: analysis cancelled: %w", b.Name, ctx.Err())
		}
		return rep, nil
	}

	var err error
	ev.Unmod, err = BuildUnmodified(b)
	if err != nil {
		return nil, err
	}
	ev.UnmodMeasure, err = MeasureContext(ctx, ev.Unmod, o.Seed, o.MaxCycles)
	if err != nil {
		return nil, err
	}
	ev.UnmodReport, err = analyze(ev.Unmod.Img, ev.Unmod.Policy)
	if err != nil {
		return nil, err
	}

	task := ev.UnmodMeasure.TaskCycles
	ev.With, err = BuildProtected(b, WithAnalysis, ev.UnmodReport, ev.Unmod, task)
	if err != nil {
		return nil, err
	}
	ev.WithReport, err = analyze(ev.With.Img, ev.With.Policy)
	if err != nil {
		return nil, err
	}
	ev.Always, err = BuildProtected(b, AlwaysOn, nil, ev.Unmod, task)
	if err != nil {
		return nil, err
	}

	// Concrete measurement of the protected variants: physically runnable
	// when the plan fits one slice per activation; multi-slice plans use the
	// analytic bound (see period()).
	if !ev.With.Watchdog || ev.With.Plan.Slices == 1 {
		if m, err := MeasureContext(ctx, ev.With, o.Seed, o.MaxCycles); err == nil {
			ev.WithMeasure = m
		}
	}
	if !ev.Always.Watchdog || ev.Always.Plan.Slices == 1 {
		if m, err := MeasureContext(ctx, ev.Always, o.Seed, o.MaxCycles); err == nil {
			ev.AlwaysMeasure = m
		}
	}
	return ev, nil
}

// EvaluateAll evaluates every benchmark concurrently (each evaluation owns
// its own simulator state; the shared netlist is immutable).
func EvaluateAll(opt *Options) ([]*Evaluation, error) {
	return EvaluateAllContext(context.Background(), opt)
}

// EvaluateAllContext is EvaluateAll under a cancellation context; the first
// cancellation error wins and the remaining evaluations drain promptly.
func EvaluateAllContext(ctx context.Context, opt *Options) ([]*Evaluation, error) {
	all := All()
	evs := make([]*Evaluation, len(all))
	errs := make([]error, len(all))
	var wg sync.WaitGroup
	for i, b := range all {
		wg.Add(1)
		go func(i int, b *Benchmark) {
			defer wg.Done()
			evs[i], errs[i] = EvaluateContext(ctx, b, opt)
		}(i, b)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return evs, nil
}

// Table2Row is one row of the paper's Table 2.
type Table2Row struct {
	Name                           string
	UnmodC1, UnmodC2, ModC1, ModC2 bool
	ExpectC1C2                     bool
}

// Table3Row is one row of the paper's Table 3.
type Table3Row struct {
	Name                    string
	Without, With           float64
	PaperWithout, PaperWith float64
	MaskedWith, MaskedAll   int
	Watchdog                bool
	CPI                     float64
}

// Tables computes both tables from a set of evaluations.
func Tables(evs []*Evaluation) ([]Table2Row, []Table3Row) {
	var t2 []Table2Row
	var t3 []Table3Row
	for _, ev := range evs {
		t2 = append(t2, Table2Row{
			Name:       ev.Bench.Name,
			UnmodC1:    ev.UnmodC1(),
			UnmodC2:    ev.UnmodC2(),
			ModC1:      ev.ModC1(),
			ModC2:      ev.ModC2(),
			ExpectC1C2: ev.Bench.ExpectC1C2,
		})
		t3 = append(t3, Table3Row{
			Name:         ev.Bench.Name,
			Without:      ev.OverheadWithout(),
			With:         ev.OverheadWith(),
			PaperWithout: ev.Bench.PaperWithout,
			PaperWith:    ev.Bench.PaperWith,
			MaskedWith:   ev.With.Masked,
			MaskedAll:    ev.Always.Masked,
			Watchdog:     ev.With.Watchdog,
			CPI:          ev.UnmodMeasure.CPI(),
		})
	}
	return t2, t3
}

// ReductionFactor computes the paper's headline ratio: average always-on
// overhead divided by average analysis-guided overhead.
func ReductionFactor(rows []Table3Row) float64 {
	var sw, sa float64
	for _, r := range rows {
		sa += r.Without
		sw += r.With
	}
	if sw == 0 {
		return 0
	}
	return sa / sw
}

var _ = transform.WdtPlan{}
