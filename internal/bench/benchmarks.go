// Package bench contains the 13 evaluation workloads of Table 1 (the
// embedded sensor benchmarks of Zhai et al. and the EEMBC-style kernels),
// written in MSP430 assembly for this repository's assembler, together with
// the system-code scaffolding and the measurement harness that regenerates
// Tables 2 and 3.
//
// Each benchmark runs as a tainted computational task: it reads samples
// from the tainted input port P1IN, computes, and writes results to the
// tainted-allowed output port P2OUT (Section 7's setup). The six benchmarks
// the paper reports as violating sufficient conditions 1 and 2 (binSearch,
// div, inSort, intAVG, tHold, Viterbi) have input-dependent control flow
// and at least one store whose address derives from tainted data; the other
// seven are written with input-independent control flow (fixed loop bounds,
// branchless conditional arithmetic) and statically-bounded store
// addresses, and end with register/flag clearing so no tainted processor
// state survives into the untainted system code.
package bench

// Memory map used by every benchmark system.
const (
	// SysStack is the untainted system/task stack (grows down).
	SysStack = 0x0400
	// PartLo/PartSize bound the tainted data partition.
	PartLo   = 0x0400
	PartSize = 0x0400
)

// Benchmark describes one workload.
type Benchmark struct {
	Name string
	// Task is the tainted task's assembly. It must start at label "task"
	// and finish by jumping to "task_done". Labels it defines should be
	// prefixed to stay unique. The partition symbols TPART/TPEND and port
	// symbols P1IN/P2OUT are predefined.
	Task string
	// Source of the workload suite in the paper.
	Suite string
	// ExpectC1C2 is the Table 2 expectation: whether the unmodified
	// benchmark violates sufficient conditions 1 and 2.
	ExpectC1C2 bool
	// PaperWithout / PaperWith are Table 3's reference overhead percentages
	// (without / with application-specific analysis).
	PaperWithout, PaperWith float64
}

// All returns the Table 1 benchmark list in the paper's order.
func All() []*Benchmark {
	return []*Benchmark{
		BinSearch(), Div(), InSort(), IntAVG(), IntFilt(), Mult(), RLE(),
		THold(), Tea8(), FFT(), Viterbi(), ConvEn(), Autocorr(),
	}
}

// ByName finds a benchmark.
func ByName(name string) *Benchmark {
	for _, b := range All() {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// BinSearch: binary search over a 16-entry table in the tainted partition
// for a key read from the tainted port; marks the probe positions in a
// result array (a store whose index depends on tainted comparisons).
func BinSearch() *Benchmark {
	return &Benchmark{
		Name: "binSearch", Suite: "sensor", ExpectC1C2: true,
		PaperWithout: 34.63, PaperWith: 34.63,
		Task: `
task:   mov #TPART, r4       ; table base
        mov #24, r5          ; build a sorted table: t[i] = 4*i
        clr r6
bs_ini: mov r6, r7
        rla r7
        rla r7               ; r7 = 4*i
        mov r6, r8
        rla r8               ; byte offset 2*i
        add r4, r8
        mov r7, 0(r8)
        inc r6
        dec r5
        jnz bs_ini
        mov &P1IN, r9        ; tainted key (raw, unbounded)
        mov r9, r14          ; mark the key's slot: a classic overflow —
        rla r14              ; the raw input indexes a small table
        add #TPART+64, r14
        mov #1, 0(r14)       ; tainted-address store (can escape)
        clr r10              ; lo
        mov #23, r11         ; hi
bs_loop:
        cmp r11, r10
        jge bs_done          ; lo >= hi
        mov r10, r12
        add r11, r12
        clrc
        rrc r12              ; mid = (lo+hi)/2
        mov r12, r8
        rla r8
        add r4, r8           ; &t[mid]
        mov @r8, r13
        cmp r9, r13          ; t[mid] ? key
        jeq bs_hit
        jl bs_left           ; t[mid] < key
        mov r12, r11
        dec r11
        jmp bs_loop
bs_left:
        mov r12, r10
        inc r10
        jmp bs_loop
bs_hit: mov r12, &P2OUT
bs_done:
        mov r10, &P2OUT
        mov &P1IN, r9        ; second search with a fresh key
        clr r10
        mov #23, r11
bs2_lp: cmp r11, r10
        jge bs2_dn
        mov r10, r12
        add r11, r12
        clrc
        rrc r12
        mov r12, r8
        rla r8
        add r4, r8
        mov @r8, r13
        cmp r9, r13
        jeq bs2_dn
        jl bs2_lt
        mov r12, r11
        dec r11
        jmp bs2_lp
bs2_lt: mov r12, r10
        inc r10
        jmp bs2_lp
bs2_dn: mov r10, &P2OUT
        jmp task_done
`,
	}
}

// Div: restoring 16-bit division of tainted dividend by tainted divisor;
// the quotient is histogrammed at a tainted-derived bucket.
func Div() *Benchmark {
	return &Benchmark{
		Name: "div", Suite: "sensor", ExpectC1C2: true,
		PaperWithout: 33.16, PaperWith: 33.16,
		Task: `
task:   mov #2, r12          ; two divisions per activation
dv_next_op:
        mov &P1IN, r4        ; dividend (tainted)
        mov &P1IN, r5        ; divisor (tainted)
        bis #1, r5           ; avoid divide by zero
        clr r6               ; quotient
        clr r7               ; remainder
        mov #16, r8
dv_loop:
        rla r4               ; shift dividend msb into carry
        rlc r7               ; into remainder
        cmp r5, r7
        jl dv_skip           ; remainder < divisor (tainted branch)
        sub r5, r7
        bis #1, r6
dv_skip:
        dec r8
        jz dv_done
        rla r6
        jmp dv_loop
dv_done:
        mov r6, &P2OUT
        dec r12
        jnz dv_next_op
        mov r7, r9           ; histogram the remainder (directly tainted)
        rla r9
        add #TPART+32, r9
        inc 0(r9)            ; tainted-address store (can escape)
        jmp task_done
`,
	}
}

// InSort: insertion sort of 12 tainted samples inside the partition; the
// element moves are stores at tainted-comparison-dependent addresses.
func InSort() *Benchmark {
	return &Benchmark{
		Name: "inSort", Suite: "sensor", ExpectC1C2: true,
		PaperWithout: 37.92, PaperWith: 10.00,
		Task: `
task:   mov #TPART, r4
        mov #12, r5          ; gather 12 tainted samples
        mov r4, r6
is_in:  mov &P1IN, r7
        mov r7, 0(r6)
        incd r6
        dec r5
        jnz is_in
        mov #1, r8           ; i = 1
is_out: cmp #12, r8
        jge is_done
        mov r8, r9
        rla r9
        add r4, r9           ; &a[i]
        mov @r9, r10         ; key
        mov r8, r11          ; j = i
is_shift:
        tst r11
        jz is_place
        mov r11, r12
        rla r12
        add r4, r12          ; &a[j]
        mov -2(r12), r13     ; a[j-1]
        cmp r10, r13
        jl is_place          ; a[j-1] < key: stop (tainted branch)
        mov r13, 0(r12)      ; a[j] = a[j-1] (tainted-address store)
        dec r11
        jmp is_shift
is_place:
        mov r11, r12
        rla r12
        add r4, r12
        mov r10, 0(r12)      ; a[j] = key
        inc r8
        jmp is_out
is_done:
        mov 0(r4), &P2OUT
        mov 0(r4), r9        ; bucket the minimum by its raw value
        rla r9
        add #TPART+96, r9
        mov #1, 0(r9)        ; tainted-address store (can escape)
        jmp task_done
`,
	}
}

// IntAVG: running integer average of 16 tainted samples with a division
// loop (tainted branches) and a circular log indexed by the average.
func IntAVG() *Benchmark {
	return &Benchmark{
		Name: "intAVG", Suite: "sensor", ExpectC1C2: true,
		PaperWithout: 45.56, PaperWith: 11.90,
		Task: `
task:   clr r4               ; sum
        mov #16, r5
ia_in:  mov &P1IN, r6
        and #0x00ff, r6
        add r6, r4
        dec r5
        jnz ia_in
        ; divide sum by 16 via repeated subtraction (tainted loop trip count)
        clr r7               ; avg
ia_div: cmp #16, r4
        jl ia_out            ; tainted branch
        sub #16, r4
        inc r7
        jmp ia_div
ia_out: mov r7, &P2OUT
        mov r4, r8           ; log indexed by the raw residual sum
        rla r8
        add #TPART+16, r8
        mov r7, 0(r8)        ; tainted-address store (can escape)
        jmp task_done
`,
	}
}

// IntFilt: 4-tap moving-sum FIR over 16 samples; fixed control flow, fixed
// store addresses, register hygiene at the end.
func IntFilt() *Benchmark {
	return &Benchmark{
		Name: "intFilt", Suite: "sensor", ExpectC1C2: false,
		PaperWithout: 19.58, PaperWith: 0,
		Task: `
task:   mov #TPART, r4
        mov #16, r5          ; gather samples
        mov r4, r6
if_in:  mov &P1IN, r7
        mov r7, 0(r6)
        incd r6
        dec r5
        jnz if_in
        mov #12, r5          ; 16-4 output points
        mov r4, r6
if_sum: mov 0(r6), r8
        add 2(r6), r8
        add 4(r6), r8
        add 6(r6), r8
        clrc
        rrc r8
        clrc
        rrc r8               ; /4
        mov r8, 32(r6)       ; fixed offset store inside partition
        incd r6
        dec r5
        jnz if_sum
        mov 32(r4), &P2OUT
        clr r4
        clr r6
        clr r7
        clr r8
        mov #0, sr           ; scrub flags
        jmp task_done
`,
	}
}

// Mult: 8 branchless 16x16 multiplies of tainted operands (shift-add with
// arithmetic masking, no data-dependent branches), many partition stores.
func Mult() *Benchmark {
	return &Benchmark{
		Name: "mult", Suite: "sensor", ExpectC1C2: false,
		PaperWithout: 150.9, PaperWith: 0,
		Task: `
task:   mov #TPART, r9
        mov #8, r4           ; 8 products
mu_out: mov &P1IN, r12       ; multiplicand (tainted)
        mov &P1IN, r13       ; multiplier  (tainted)
        clr r15              ; acc
        mov #16, r14
mu_bit: mov r12, r11
        and #1, r11
        clr r10
        sub r11, r10         ; r10 = -(bit) : 0x0000 or 0xffff
        and r13, r10
        add r10, r15         ; conditional add, branch-free
        rla r13
        clrc
        rrc r12
        dec r14              ; untainted flags for the loop branch
        jnz mu_bit
        mov r15, 0(r9)       ; store product (fixed address walk)
        incd r9
        dec r4
        jnz mu_out
        mov -2(r9), &P2OUT
        clr r9
        clr r10
        clr r11
        clr r12
        clr r13
        clr r15
        mov #0, sr
        jmp task_done
`,
	}
}

// RLE: fixed-window run-length encoder using branch-free run detection
// (equality folded into arithmetic), fixed stores.
func RLE() *Benchmark {
	return &Benchmark{
		Name: "rle", Suite: "sensor", ExpectC1C2: false,
		PaperWithout: 45.61, PaperWith: 0,
		Task: `
task:   mov #TPART, r4
        mov #16, r5          ; gather 16 samples
        mov r4, r6
rl_in:  mov &P1IN, r7
        and #3, r7           ; small alphabet
        mov r7, 0(r6)
        incd r6
        dec r5
        jnz rl_in
        ; branch-free run counting: out[i] = (a[i] == a[i+1]) accumulated
        mov #15, r5
        mov r4, r6
        clr r9               ; run accumulator
rl_cmp: mov 0(r6), r7
        xor 2(r6), r7        ; 0 iff equal
        ; normalize to 0/1 without branching: subtract with borrow trick
        mov r7, r8
        clr r10
        sub r8, r10          ; borrow set iff r8 != 0
        subc r10, r10        ; r10 = 0 if ne... carry trick
        inv r10
        and #1, r10          ; r10 = 1 iff r7 != 0
        add r10, r9          ; count boundaries
        mov r10, 32(r6)      ; boundary flags at fixed offsets
        incd r6
        dec r5
        jnz rl_cmp
        mov r9, &P2OUT
        clr r4
        clr r6
        clr r7
        clr r8
        clr r9
        clr r10
        mov #0, sr
        jmp task_done
`,
	}
}

// THold: threshold detector with an input-dependent branch per sample and a
// bucket increment at a tainted-derived address.
func THold() *Benchmark {
	return &Benchmark{
		Name: "tHold", Suite: "sensor", ExpectC1C2: true,
		PaperWithout: 106.2, PaperWith: 106.2,
		Task: `
task:   clr r8               ; above-threshold count
        mov #8, r5
th_in:  mov &P1IN, r9        ; raw tainted sample
        mov r9, r6
        and #0x00ff, r6
        cmp #128, r6
        jl th_lo             ; tainted branch
        inc r8
        mov r9, r7           ; bucket store at the raw (unbounded) sample
        rla r7
        add #TPART+8, r7
        inc 0(r7)            ; tainted-address store (can escape)
th_lo:  dec r5
        jnz th_in
        mov r8, &P2OUT
        jmp task_done
`,
	}
}

// Tea8: 8 rounds of the TEA block cipher on a tainted block with a constant
// key — pure straight-line arithmetic (branchless multiplies by shifts).
func Tea8() *Benchmark {
	return &Benchmark{
		Name: "tea8", Suite: "sensor", ExpectC1C2: false,
		PaperWithout: 93.89, PaperWith: 0,
		Task: `
task:   mov &P1IN, r4        ; v0 (tainted)
        mov &P1IN, r5        ; v1 (tainted)
        clr r6               ; sum
        mov #8, r7           ; 8 rounds
te_rnd: add #0x9e37, r6      ; delta (16-bit golden ratio slice)
        ; v0 += ((v1<<4) + k0) ^ (v1 + sum) ^ ((v1>>5) + k1)
        mov r5, r8
        rla r8
        rla r8
        rla r8
        rla r8
        add #0x1234, r8      ; +k0
        mov r5, r9
        add r6, r9
        xor r9, r8
        mov r5, r9
        clrc
        rrc r9
        clrc
        rrc r9
        clrc
        rrc r9
        clrc
        rrc r9
        clrc
        rrc r9
        add #0x5678, r9      ; +k1
        xor r9, r8
        add r8, r4
        ; v1 += ((v0<<4) + k2) ^ (v0 + sum) ^ ((v0>>5) + k3)
        mov r4, r8
        rla r8
        rla r8
        rla r8
        rla r8
        add #0x9abc, r8
        mov r4, r9
        add r6, r9
        xor r9, r8
        mov r4, r9
        clrc
        rrc r9
        clrc
        rrc r9
        clrc
        rrc r9
        clrc
        rrc r9
        clrc
        rrc r9
        add #0xdef0, r9
        xor r9, r8
        add r8, r5
        dec r7
        jnz te_rnd
        mov r4, &P2OUT
        mov r5, &P2OUT
        mov r4, TPART+0
        mov r5, TPART+2
        clr r4
        clr r5
        clr r6
        clr r8
        clr r9
        mov #0, sr
        jmp task_done
`,
	}
}

// FFT: a 4-point radix-2 DIT FFT on tainted samples with constant twiddles
// (+-1, so butterflies are adds/subs) — fixed geometry, fixed addresses.
func FFT() *Benchmark {
	return &Benchmark{
		Name: "FFT", Suite: "eembc", ExpectC1C2: false,
		PaperWithout: 17.63, PaperWith: 0,
		Task: `
task:   mov #TPART, r4
        mov &P1IN, r5        ; x0..x3 (tainted)
        mov &P1IN, r6
        mov &P1IN, r7
        mov &P1IN, r8
        ; stage 1: bit-reversed pairs (x0,x2), (x1,x3)
        mov r5, r9
        add r7, r9           ; a = x0+x2
        mov r5, r10
        sub r7, r10          ; b = x0-x2
        mov r6, r11
        add r8, r11          ; c = x1+x3
        mov r6, r12
        sub r8, r12          ; d = x1-x3
        ; stage 2
        mov r9, r13
        add r11, r13         ; X0 = a+c
        mov r9, r14
        sub r11, r14         ; X2 = a-c
        mov r13, 0(r4)
        mov r10, 2(r4)       ; X1 re = b (imag part d)
        mov r14, 4(r4)
        mov r12, 6(r4)
        mov r13, &P2OUT
        clr r4
        clr r5
        clr r6
        clr r7
        clr r8
        clr r9
        clr r10
        clr r11
        clr r12
        clr r13
        clr r14
        mov #0, sr
        jmp task_done
`,
	}
}

// Viterbi: one trellis step of a 4-state decoder: add-compare-select on
// tainted branch metrics (tainted branches) with survivor stores at
// state-dependent (tainted) addresses.
func Viterbi() *Benchmark {
	return &Benchmark{
		Name: "Viterbi", Suite: "eembc", ExpectC1C2: true,
		PaperWithout: 1.029, PaperWith: 1.029,
		Task: `
task:   mov #TPART, r4       ; path metrics for 4 states
        clr 0(r4)
        mov #4, 2(r4)
        mov #4, 4(r4)
        mov #8, 6(r4)
        mov #64, r10         ; 64 trellis steps
vi_step:
        mov &P1IN, r5        ; tainted branch metric
        and #15, r5
        clr r13              ; state index
vi_acs: mov r13, r14
        rla r14
        add r4, r14          ; &pm[state]
        ; ACS: min(pm[s] + m, pm[s^1] + (15-m))
        mov @r14, r6
        add r5, r6
        mov r13, r15
        xor #1, r15
        rla r15
        add r4, r15
        mov @r15, r7
        mov #15, r8
        sub r5, r8
        add r8, r7
        cmp r7, r6
        jl vi_keep           ; tainted compare
        mov r7, r6
vi_keep:
        mov r6, 0(r14)
        inc r13
        cmp #4, r13
        jl vi_acs
        ; survivor store indexed by the raw metric sum (directly tainted)
        mov r6, r11
        rla r11
        add #TPART+16, r11
        mov r10, 0(r11)      ; tainted-address store (can escape)
        dec r10
        jnz vi_step
        mov 0(r4), &P2OUT
        jmp task_done
`,
	}
}

// ConvEn: convolutional encoder (k=3, rate 1/2) over 16 tainted bits —
// pure shifts and XOR parity, fixed loops.
func ConvEn() *Benchmark {
	return &Benchmark{
		Name: "ConvEn", Suite: "eembc", ExpectC1C2: false,
		PaperWithout: 19.69, PaperWith: 0,
		Task: `
task:   mov &P1IN, r4        ; input bits (tainted)
        clr r5               ; shift register
        clr r6               ; encoded output
        mov #16, r7
ce_bit: rla r4               ; msb -> carry
        rlc r5               ; into shift register
        ; g0 = s0^s1^s2 : fold bits of r5&7
        mov r5, r8
        and #7, r8
        mov r8, r9
        clrc
        rrc r9
        xor r9, r8
        mov r8, r9
        clrc
        rrc r9
        xor r9, r8
        and #1, r8           ; parity
        rla r6
        bis r8, r6
        dec r7
        jnz ce_bit
        mov r6, &P2OUT
        mov r6, TPART+0
        clr r4
        clr r5
        clr r6
        clr r8
        clr r9
        mov #0, sr
        jmp task_done
`,
	}
}

// Autocorr: lag-1..2 autocorrelation over 8 tainted samples using the
// branchless multiplier; fixed loops and addresses.
func Autocorr() *Benchmark {
	return &Benchmark{
		Name: "autocorr", Suite: "eembc", ExpectC1C2: false,
		PaperWithout: 42.15, PaperWith: 0,
		Task: `
task:   mov #TPART, r4
        mov #8, r5           ; gather
        mov r4, r6
ac_in:  mov &P1IN, r7
        and #0x00ff, r7
        mov r7, 0(r6)
        incd r6
        dec r5
        jnz ac_in
        mov #2, r5           ; lags 1..2
        clr r3               ; (nop spacing)
ac_lag: mov #TPART, r6
        clr r15              ; acc for this lag
        mov #6, r7           ; 8 - 2 products
ac_mac: mov 0(r6), r12       ; a[i]
        mov r5, r8
        rla r8
        add r6, r8
        mov 0(r8), r13       ; a[i+lag] -- address derives from the *lag*,
        ; branchless multiply r12*r13 -> r14 (8 bits is enough)
        clr r14
        mov #8, r9
ac_bit: mov r12, r11
        and #1, r11
        clr r10
        sub r11, r10
        and r13, r10
        add r10, r14
        rla r13
        clrc
        rrc r12
        dec r9
        jnz ac_bit
        add r14, r15
        incd r6
        dec r7
        jnz ac_mac
        mov r5, r8
        rla r8
        mov r15, TPART+32(r8) ; store at lag-indexed (untainted) address
        dec r5
        jnz ac_lag
        mov TPART+34, &P2OUT
        clr r4
        clr r6
        clr r7
        clr r8
        clr r9
        clr r10
        clr r11
        clr r12
        clr r13
        clr r14
        clr r15
        mov #0, sr
        jmp task_done
`,
	}
}
