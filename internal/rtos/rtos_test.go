package rtos

import (
	"sync"
	"testing"

	"repro/internal/glift"
)

var (
	ucOnce sync.Once
	uc     *UseCase
	ucErr  error
)

func useCase(t *testing.T) *UseCase {
	t.Helper()
	ucOnce.Do(func() { uc, ucErr = Run(nil) })
	if ucErr != nil {
		t.Fatal(ucErr)
	}
	return uc
}

// The unprotected system is compromised: the untrusted task's tainted
// control flow reaches the scheduler and the trusted task (C1), and its
// unbounded keyed store can taint untainted memory (C2).
func TestUnprotectedSchedulerCompromised(t *testing.T) {
	u := useCase(t)
	rep := u.UnprotectedReport
	if len(rep.ByKind(glift.C1TaintedState)) == 0 {
		t.Errorf("expected tainted scheduling (C1), got %v", rep.Violations)
	}
	if len(rep.ByKind(glift.C2MemoryEscape)) == 0 {
		t.Errorf("expected memory escape (C2), got %v", rep.Violations)
	}
	if u.MaskedStores == 0 {
		t.Error("root-cause analysis identified no stores to mask")
	}
}

// The protected system verifies: no cross-task flows and untouchable
// scheduling — the paper's two system-level properties.
func TestProtectedSchedulerVerifies(t *testing.T) {
	u := useCase(t)
	if !u.ProtectedReport.Secure() {
		t.Errorf("protected RTOS system not secure: %v", u.ProtectedReport.Violations)
	}
}

// The protection overhead on the full round is small because the trusted
// work dominates (the paper reports 0.83%).
func TestOverheadSmall(t *testing.T) {
	u := useCase(t)
	o := u.OverheadPercent()
	if o <= 0 || o > 10 {
		t.Errorf("round overhead = %.2f%% (rounds %d -> %d), expected small positive",
			o, u.UnprotectedRound, u.ProtectedRound)
	}
	t.Logf("rounds: unprotected=%d protected=%d overhead=%.2f%% (paper: 0.83%%)",
		u.UnprotectedRound, u.ProtectedRound, o)
}

func TestBuildVariants(t *testing.T) {
	for _, p := range []bool{false, true} {
		s, err := Build(p)
		if err != nil {
			t.Fatalf("build(%v): %v", p, err)
		}
		if s.Img.SizeWords() < 50 {
			t.Errorf("suspiciously small system: %d words", s.Img.SizeWords())
		}
		if p && s.Plan.IntervalCycles == 0 {
			t.Error("protected build has no watchdog plan")
		}
	}
}
