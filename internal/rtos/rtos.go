// Package rtos reproduces the system-level use case of Section 7.3: an IoT
// system whose (FreeRTOS-style) scheduler round-robins a trusted task (div)
// and an untrusted task (binSearch). The goals, verified by the analysis:
//
//  1. no insecure information flows across the scheduled tasks, and
//  2. no task can affect the scheduling performed by the system software.
//
// In the unprotected system the untrusted task's control flow depends on an
// untrusted input, so after it runs, the processor's control state is
// tainted: the trusted task becomes untrusted the next time it is scheduled
// and the scheduling itself is compromised (both observed as C1
// violations). The protected system masks the untrusted task's
// out-of-bounds stores and wraps it in the watchdog bound: the reset vector
// re-enters the scheduler, which re-arms the watchdog with the scheduling
// timer, exactly as the paper describes. The total overhead is small
// because the trusted work dominates the round (the paper reports 0.83%).
package rtos

import (
	"fmt"
	"strings"

	"repro/internal/asm"
	"repro/internal/glift"
	"repro/internal/mcu"
	"repro/internal/sim"
	"repro/internal/transform"
)

// Partition layout shared with the benchmarks: the untrusted task owns
// 0x0400-0x07ff; the scheduler's state and stack live below it.
const (
	partLo   = 0x0400
	partSize = 0x0400
)

// trustedWork is the trusted div kernel, repeated to dominate the round
// (the per-round trusted work makes the watchdog idle padding small).
const trustedWork = `
; ---- trusted task: repeated 16-bit restoring division ----
div_task:
        mov #64, r13         ; trusted repetitions
div_rep:
        mov #0xbeef, r4      ; dividend (trusted constant stream)
        mov #0x0013, r5      ; divisor
        clr r6
        clr r7
        mov #16, r8
div_loop:
        rla r4
        rlc r7
        cmp r5, r7
        jl div_skip
        sub r5, r7
        bis #1, r6
div_skip:
        dec r8
        jz div_next
        rla r6
        jmp div_loop
div_next:
        mov r6, &0x0380      ; trusted result in untainted RAM
        dec r13
        jnz div_rep
        ret
`

// untrustedTask is the binSearch kernel running as the untrusted task. It
// reads a key from the untrusted port P1IN; its probe loop's control flow
// depends on that key, and the key's raw value indexes a mark table (the
// overflow store the toolflow masks). masked selects the repaired version.
func untrustedTask(masked bool) string {
	mask := ""
	if masked {
		mask = `
        and #0x03ff, r14     ; mask: inserted by root-cause analysis
        bis #0x0400, r14`
	}
	return `
; ---- untrusted task: binary search keyed by an untrusted input ----
bs_task:
        mov #TPART, r4
        mov #32, r5          ; sorted table t[i] = 4*i
        clr r6
bs_ini: mov r6, r7
        rla r7
        rla r7
        mov r6, r8
        rla r8
        add r4, r8
        mov r7, 0(r8)
        inc r6
        dec r5
        jnz bs_ini
        mov &P1IN, r9        ; untrusted key
        mov r9, r14
        rla r14
        add #TPART+128, r14` + mask + `
        mov #1, 0(r14)       ; mark the key slot (overflow when unmasked)
        clr r10
        mov #31, r11
bs_loop:
        cmp r11, r10
        jge bs_done
        mov r10, r12
        add r11, r12
        clrc
        rrc r12
        mov r12, r8
        rla r8
        add r4, r8
        mov @r8, r13
        cmp r9, r13
        jeq bs_hit
        jl bs_left
        mov r12, r11
        dec r11
        jmp bs_loop
bs_left:
        mov r12, r10
        inc r10
        jmp bs_loop
bs_hit: mov r12, &P2OUT
bs_done:
        mov r10, &P2OUT
`
}

// schedulerSource builds the complete system. In the protected variant the
// scheduler arms the watchdog before dispatching the untrusted task and the
// task parks in an in-partition idle loop until the watchdog power-on reset
// returns control to the scheduler via the reset vector; unprotected, the
// untrusted task jumps straight back.
func schedulerSource(protected bool, wdtval uint16) string {
	var sb strings.Builder
	sb.WriteString(`
.equ WDTCTL, 0x0120
.equ P1IN, 0x0020
.equ P2OUT, 0x0026
.equ TPART, 0x0400
.equ ROUND, 0x0390
; ---- scheduler (trusted system code) ----
start:  mov #0x0380, sp
sched:  add #1, &ROUND       ; scheduling round counter (survives POR)
        call #div_task       ; slice 1: trusted task (cooperative)
`)
	if protected {
		fmt.Fprintf(&sb, "        mov #0x%04x, &WDTCTL ; slice 2: arm the bound for the untrusted task\n", wdtval)
		sb.WriteString("        jmp bs_task\n")
		sb.WriteString("bs_ret: jmp bs_ret           ; unreachable: POR re-enters at start\n")
	} else {
		sb.WriteString("        jmp bs_task          ; slice 2: untrusted task (unbounded!)\n")
		sb.WriteString("bs_ret: jmp sched\n")
	}
	sb.WriteString(trustedWork)
	sb.WriteString("task_start:\n")
	sb.WriteString(untrustedTask(protected))
	if protected {
		sb.WriteString("bs_idle: jmp bs_idle        ; park until the watchdog reset\n")
	} else {
		sb.WriteString("        jmp bs_ret\n")
	}
	sb.WriteString("task_end: nop\n")
	return sb.String()
}

// System is a built scheduler system.
type System struct {
	Protected bool
	Img       *asm.Image
	Policy    *glift.Policy
	Plan      transform.WdtPlan
}

// Build assembles a variant. The watchdog interval is planned from the
// untrusted task's measured length (bounded well under one 512-cycle
// slice, so a single slice is used, as an RTOS time slice would be).
func Build(protected bool) (*System, error) {
	plan := transform.WdtPlan{}
	if protected {
		plan = transform.PlanWatchdog(450)
	}
	img, err := asm.AssembleSource(schedulerSource(protected, plan.WDTCTLValue()))
	if err != nil {
		return nil, fmt.Errorf("rtos: %w", err)
	}
	pol := &glift.Policy{
		Name:            "integrity",
		TaintedInPorts:  []int{0},
		TaintedOutPorts: []int{1},
		TaintedCode: []glift.AddrRange{{
			Lo: img.MustSymbol("task_start"),
			Hi: img.MustSymbol("task_end"),
		}},
		TaintedData: []glift.AddrRange{{Lo: partLo, Hi: partLo + partSize}},
	}
	return &System{Protected: protected, Img: img, Policy: pol, Plan: plan}, nil
}

// Analyze runs the information flow analysis on the system.
func (s *System) Analyze(opt *glift.Options) (*glift.Report, error) {
	return glift.Analyze(s.Img, s.Policy, opt)
}

// MeasureRound runs the system concretely and returns the steady-state
// cycles of one scheduling round (trusted slice + untrusted slice).
func (s *System) MeasureRound(seed uint16, maxCycles uint64) (uint64, error) {
	sys, err := mcu.NewSystem(glift.SharedDesign())
	if err != nil {
		return 0, err
	}
	zeros := make([]byte, sys.RAM.Size())
	sys.RAM.Fill(sys.RAM.Base(), zeros)
	s.Img.Place(func(a, w uint16) { sys.ROM.StoreWord(a, sim.ConcreteWord(w)) })
	sys.SetResetVector(s.Img.Entry)

	sched := s.Img.MustSymbol("sched")
	rng := uint16(seed | 1)
	next := func() uint16 {
		bit := (rng>>0 ^ rng>>2 ^ rng>>3 ^ rng>>5) & 1
		rng = rng>>1 | bit<<15
		return rng
	}
	sys.PowerOn()
	var marks []uint64
	for sys.Cycle < maxCycles && len(marks) < 3 {
		sys.SetPortIn(0, sim.ConcreteWord(next()))
		ci := sys.EvalCycle(nil)
		if !ci.PmemOK {
			return 0, fmt.Errorf("rtos: PC unknown at cycle %d", sys.Cycle)
		}
		if ci.StateOK && ci.State == mcu.StFetch && ci.PmemAddr == sched {
			marks = append(marks, sys.Cycle)
		}
		sys.Commit(ci)
	}
	if len(marks) < 3 {
		return 0, fmt.Errorf("rtos: no steady round in %d cycles", maxCycles)
	}
	return marks[2] - marks[1], nil
}

// UseCase runs the full Section 7.3 experiment: both variants analyzed and
// measured.
type UseCase struct {
	UnprotectedReport *glift.Report
	ProtectedReport   *glift.Report
	UnprotectedRound  uint64
	ProtectedRound    uint64
	MaskedStores      int // violating stores the toolflow identified
}

// OverheadPercent is the round-time cost of the protections.
func (u *UseCase) OverheadPercent() float64 {
	if u.UnprotectedRound == 0 {
		return 0
	}
	return 100 * float64(int64(u.ProtectedRound)-int64(u.UnprotectedRound)) / float64(u.UnprotectedRound)
}

// Run executes the experiment.
func Run(opt *glift.Options) (*UseCase, error) {
	uc := &UseCase{}
	unprot, err := Build(false)
	if err != nil {
		return nil, err
	}
	if uc.UnprotectedReport, err = unprot.Analyze(opt); err != nil {
		return nil, err
	}
	uc.MaskedStores = len(uc.UnprotectedReport.ViolatingStorePCs())
	if uc.UnprotectedRound, err = unprot.MeasureRound(0xACE1, 200_000); err != nil {
		return nil, err
	}

	prot, err := Build(true)
	if err != nil {
		return nil, err
	}
	if uc.ProtectedReport, err = prot.Analyze(opt); err != nil {
		return nil, err
	}
	if uc.ProtectedRound, err = prot.MeasureRound(0xACE1, 200_000); err != nil {
		return nil, err
	}
	return uc, nil
}
