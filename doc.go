// Package repro is a from-scratch Go reproduction of "Software-based
// Gate-level Information Flow Security for IoT Systems" (Cherupalli, Duwe,
// Ye, Kumar, Sartori — MICRO 2017).
//
// The paper's contribution — a software tool that provides gate-level
// information flow tracking (GLIFT) guarantees for a known application on a
// commodity ultra-low-power processor, plus software-only repairs (address
// masking and watchdog-bounded execution) — is implemented in
// internal/glift and internal/transform, on top of a complete gate-level
// MSP430-class microcontroller built from gate primitives (internal/mcu,
// internal/synth, internal/netlist, internal/logic) and an MSP430 assembler
// and reference interpreter (internal/asm, internal/isa).
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and per-experiment index, and EXPERIMENTS.md for paper-vs-
// measured results. The root bench_test.go regenerates every table and
// figure of the paper's evaluation:
//
//	go test -bench . -benchtime 1x
package repro
